//! Trace-once simulation of one workload across a fleet of machines.
//!
//! The paper characterizes every workload on seven machines (Table I).
//! The instruction trace for a (profile, seed) pair is machine-independent,
//! so simulating the fleet as N independent [`CoreSimulator`] runs expands
//! the same trace N times and pays the generator's cost N times. The
//! [`FleetSimulator`] streams the trace **once** and fans each instruction
//! out across every machine's microarchitectural state, producing counters
//! bit-identical to the independent runs.
//!
//! Two observations make the fused kernel fast *and* exact:
//!
//! 1. **Structure purity.** Each machine's caches, TLBs and branch
//!    predictor consume only the (pc, data address, branch outcome)
//!    streams, which depend on (profile, seed) alone; structures of
//!    different machines never interact. Stepping every structure with the
//!    identical event in program order therefore visits exactly the states
//!    of the independent simulation — and the per-instruction fan-out keeps
//!    the structures' loop-carried update chains independent, so they
//!    overlap in the host pipeline just as an inline simulation's do.
//!
//! 2. **Config-group deduplication.** A structure's entire evolution is a
//!    deterministic function of (its configuration, its input stream). The
//!    input streams of L1 structures are machine-independent, so machines
//!    with an identical L1 front-end — the ([`CacheConfig`] of L1I/L1D
//!    plus prefetcher) triple, an L1 TLB config, or a [`PredictorKind`] —
//!    share **one** simulated instance and copy its counters. The shared
//!    levels (L2/L3, L2 TLB) are still per machine, but they are driven
//!    from the front-end's hit/miss/install outcomes and only do work on
//!    the rare events that reach them. In the paper's Table IV fleet this
//!    collapses 7 L1 cache front-ends to 4 and 7+7 L1 TLBs to 4+5, and
//!    pays trace generation once instead of 7 times.
//!
//! On top of the dedup, the kernel is *lane-stepped*: instead of fanning
//! each instruction out across every group, events are buffered into small
//! program-order blocks ([`LaneBatch`]) and each group lane advances over a
//! whole block at a time, structure-major. Shared-level lanes consume
//! position-merged event lists that reconstruct each machine's exact
//! per-instruction order; see `FleetState::run_batch` for the kernel order
//! and the bit-identity argument, and DESIGN.md §16 for the full write-up.
//!
//! Trace-side counters (instruction mix, taken branches, kernel
//! instructions) are likewise accumulated once at generation time. The
//! bit-identity is enforced by fixed-vector tests here and a property test
//! in `tests/fleet_equivalence.rs`.
//!
//! [`CoreSimulator`]: crate::CoreSimulator
//! [`CacheConfig`]: crate::CacheConfig
//! [`PredictorKind`]: crate::PredictorKind

use horizon_trace::{Instruction, Kind, TraceGenerator, WorkloadProfile};

use crate::branch::{BranchPredictor, PredictorKind};
use crate::cache::Cache;
use crate::cache::CacheConfig;
use crate::counters::Counters;
use crate::hierarchy::{AccessKind, DataFront, HierarchyConfig, L2Back, PrefetchConfig};
use crate::machine::MachineConfig;
use crate::simulator::PREWARM_LIMIT;
use crate::tlb::{Tlb, TlbConfig, TlbHierarchyConfig};
use crate::topdown::CpiStack;

/// Deduplicates `keys`, returning the unique keys (first-occurrence order)
/// and, per input, the index of its unique key.
fn dedup_groups<K: PartialEq>(keys: Vec<K>) -> (Vec<K>, Vec<usize>) {
    let mut uniq: Vec<K> = Vec::new();
    let mut index = Vec::with_capacity(keys.len());
    for k in keys {
        match uniq.iter().position(|u| *u == k) {
            Some(i) => index.push(i),
            None => {
                uniq.push(k);
                index.push(uniq.len() - 1);
            }
        }
    }
    (uniq, index)
}

/// Per-event outcome bits of one data-front group.
const DATA_MISS: u8 = 1 << 1;
const INSTALL: u8 = 1 << 2;

/// Instructions buffered per lane batch before the group kernels drain it.
/// Big enough to amortize the per-group kernel setup and keep each
/// structure's clock/memo/hint state hot across a whole run of events;
/// small enough that every per-batch event list stays L1-resident.
const LANE_BLOCK: usize = 256;

/// One batch of per-structure event lists, filled in program order by
/// [`FleetState::step`] (and the prewarm walks) and drained by
/// [`FleetState::run_batch`]. Every list records its events' positions
/// within the batch, so the back-lane kernels can merge two lists back
/// into exact per-instruction order.
#[derive(Default)]
struct LaneBatch {
    /// Probes folded into this batch so far (also the next position).
    len: u32,
    /// `(position, pc)` of fetch probes that left the current line granule.
    fetch: Vec<(u32, u64)>,
    /// `(position, pc)` of fetch probes that left the current page granule.
    itlb: Vec<(u32, u64)>,
    /// `(position, address)` of every data access.
    data: Vec<(u32, u64)>,
    /// `(position, address)` of data accesses that left the page granule.
    dtlb: Vec<(u32, u64)>,
    /// `(pc, taken)` of branches, in program order.
    branches: Vec<(u64, bool)>,
}

impl LaneBatch {
    fn new() -> Self {
        LaneBatch {
            len: 0,
            fetch: Vec::with_capacity(LANE_BLOCK),
            itlb: Vec::with_capacity(LANE_BLOCK),
            data: Vec::with_capacity(LANE_BLOCK),
            dtlb: Vec::with_capacity(LANE_BLOCK),
            branches: Vec::with_capacity(LANE_BLOCK),
        }
    }

    fn clear(&mut self) {
        self.len = 0;
        self.fetch.clear();
        self.itlb.clear();
        self.data.clear();
        self.dtlb.clear();
        self.branches.clear();
    }
}

/// One machine-distinct shared-level cache (distinct full
/// [`HierarchyConfig`]), driven by its front groups' recorded outcomes.
struct CacheBackLane {
    back: L2Back,
    l1i_group: usize,
    data_group: usize,
}

/// One machine-distinct L2 TLB + page-walk accounting (distinct full
/// [`TlbHierarchyConfig`]), driven by the per-side front lanes.
struct TlbBackLane {
    l2: Option<Tlb>,
    walks_i: u64,
    walks_d: u64,
    itlb_group: usize,
    dtlb_group: usize,
}

impl TlbBackLane {
    /// Mirrors `TlbHierarchy::refill`: returns `true` when the refill
    /// required a page walk.
    #[inline]
    fn refill(&mut self, addr: u64) -> bool {
        match &mut self.l2 {
            Some(l2) => !l2.access(addr),
            None => true,
        }
    }
}

/// One shared branch predictor (distinct [`PredictorKind`]).
struct PredictorLane {
    predictor: Box<dyn BranchPredictor + Send>,
    mispredicts: u64,
}

/// Machine-independent counters accumulated once while the trace streams.
#[derive(Default)]
struct TraceCounts {
    instructions: u64,
    kernel_instructions: u64,
    loads: u64,
    stores: u64,
    branches: u64,
    taken_branches: u64,
    fp_ops: u64,
    simd_ops: u64,
}

impl TraceCounts {
    #[inline]
    fn note(&mut self, inst: &Instruction) {
        self.instructions += 1;
        self.kernel_instructions += inst.kernel as u64;
        match inst.kind {
            Kind::Load { .. } => self.loads += 1,
            Kind::Store { .. } => self.stores += 1,
            Kind::Branch { taken, .. } => {
                self.branches += 1;
                self.taken_branches += taken as u64;
            }
            Kind::FpAlu => self.fp_ops += 1,
            Kind::Simd => self.simd_ops += 1,
            Kind::IntAlu => {}
        }
    }
}

/// Warm-state counter snapshot of every group, taken after warmup so the
/// measured window can be isolated by subtraction (same bookkeeping as
/// `CoreSimulator::run`, per group instead of per machine).
struct GroupSnapshots {
    /// Per L1I group: (accesses, misses).
    l1is: Vec<(u64, u64)>,
    /// Per data-front group: (l1d_accesses, l1d_misses).
    datas: Vec<(u64, u64)>,
    /// Per cache back lane: (l2i_acc, l2i_miss, l2d_acc, l2d_miss, l3_acc,
    /// l3_miss, mem).
    cache_backs: Vec<(u64, u64, u64, u64, u64, u64, u64)>,
    /// Per I-TLB front group: misses.
    itlbs: Vec<u64>,
    /// Per D-TLB front group: misses.
    dtlbs: Vec<u64>,
    /// Per TLB back lane: (walks_i, walks_d).
    tlb_backs: Vec<(u64, u64)>,
    /// Per predictor lane: measured mispredicts so far.
    predictors: Vec<u64>,
}

/// One contiguous stretch of the trace handed to
/// [`FleetSimulator::run_trace_segments`]: `skip` instructions are dropped
/// from the stream (optionally with branch-outcome functional warming),
/// then `warmup` instructions run detailed but unmeasured, then `measure`
/// instructions are counted. Microarchitectural state persists across
/// segments — that carry-over is the stitched-sampling approximation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSegment {
    /// Instructions dropped before the detailed portion.
    pub skip: u64,
    /// Detailed but unmeasured instructions immediately before the window.
    pub warmup: u64,
    /// Measured instructions.
    pub measure: u64,
}

/// Simulates one workload on many machines from a single trace expansion.
///
/// Counters are bit-identical to running [`crate::CoreSimulator`] once per
/// machine with the same warmup/window/seed; trace generation, prewarm
/// address walks, instruction-mix accounting, and every structure shared
/// between machine configurations are paid once per fleet instead of once
/// per machine.
///
/// # Example
///
/// ```
/// use horizon_trace::WorkloadProfile;
/// use horizon_uarch::{CoreSimulator, FleetSimulator, MachineConfig};
///
/// let p = WorkloadProfile::builder("w").loads(0.25).build()?;
/// let machines = [MachineConfig::skylake_i7_6700(), MachineConfig::sparc_t4()];
/// let fleet = FleetSimulator::new(&machines).run(&p, 20_000, 7);
/// let solo = CoreSimulator::new(&machines[1]).run(&p, 20_000, 7);
/// assert_eq!(fleet[1], solo);
/// # Ok::<(), horizon_trace::ProfileError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FleetSimulator {
    machines: Vec<MachineConfig>,
    /// Instructions to run before counters start (cold-start warmup).
    warmup: u64,
    /// Train branch predictors on skipped segment regions.
    functional_warming: bool,
}

impl FleetSimulator {
    /// Creates a fleet simulator with no warmup, like
    /// [`crate::CoreSimulator::new`].
    pub fn new(machines: &[MachineConfig]) -> Self {
        FleetSimulator {
            machines: machines.to_vec(),
            warmup: 0,
            functional_warming: false,
        }
    }

    /// Sets the warmup instruction count applied to every machine.
    pub fn with_warmup(mut self, instructions: u64) -> Self {
        self.warmup = instructions;
        self
    }

    /// Enables SMARTS-style functional warming of skipped regions in
    /// [`FleetSimulator::run_trace_segments`]: skipped instructions still
    /// perform every cache, TLB and predictor state update (with
    /// measurement disabled), so all structures — including slow-training
    /// TAGE tables and slow-filling last-level caches — enter each
    /// measured segment with exactly the state the full run would have
    /// had. Only the measured footprint shrinks; reconstruction error is
    /// then pure sampling error, never state staleness. Has no effect on
    /// [`FleetSimulator::run_trace`], which skips nothing.
    pub fn with_functional_warming(mut self, enabled: bool) -> Self {
        self.functional_warming = enabled;
        self
    }

    /// The machines this fleet models, in result order.
    pub fn machines(&self) -> &[MachineConfig] {
        &self.machines
    }

    /// Runs `instructions` measured instructions of `profile` (after any
    /// warmup) on every machine and returns one [`Counters`] per machine,
    /// in [`FleetSimulator::machines`] order.
    pub fn run(&self, profile: &WorkloadProfile, instructions: u64, seed: u64) -> Vec<Counters> {
        self.run_trace(profile, instructions, TraceGenerator::new(profile, seed))
    }

    /// [`FleetSimulator::run`] with the instruction stream supplied by the
    /// caller instead of expanded in place — the replay entry point. Any
    /// `Iterator<Item = Instruction>` works: a live [`TraceGenerator`], a
    /// packed trace replayed from disk, or a synthetic test stream. The
    /// source must yield at least `warmup + instructions` items and must
    /// reproduce the generator stream exactly for counters to match
    /// [`FleetSimulator::run`]; `run` itself delegates here, so the two
    /// paths cannot drift.
    pub fn run_trace(
        &self,
        profile: &WorkloadProfile,
        instructions: u64,
        source: impl Iterator<Item = Instruction>,
    ) -> Vec<Counters> {
        let seg = TraceSegment {
            skip: 0,
            warmup: 0,
            measure: instructions,
        };
        self.run_trace_segments(profile, &[seg], source)
            .pop()
            .unwrap_or_default()
    }

    /// Runs a sequence of [`TraceSegment`]s through **one** persistent
    /// fleet state and returns per-segment, per-machine counters (outer
    /// index: segment; inner: [`FleetSimulator::machines`] order).
    ///
    /// This is the stitched-sampling entry point: skipped instructions
    /// are dropped from the measured stream. With
    /// [`FleetSimulator::with_functional_warming`] set they still run the
    /// full state update (unmeasured), keeping every structure exactly on
    /// the full run's trajectory; without it they are skipped outright
    /// and state carries across the gap unchanged. The simulator's own
    /// `warmup` runs detailed at the head of the stream, before the
    /// first segment; [`FleetSimulator::run_trace`] is exactly a
    /// single-segment call, so the two paths cannot drift.
    pub fn run_trace_segments(
        &self,
        profile: &WorkloadProfile,
        segments: &[TraceSegment],
        source: impl Iterator<Item = Instruction>,
    ) -> Vec<Vec<Counters>> {
        if self.machines.is_empty() {
            return segments.iter().map(|_| Vec::new()).collect();
        }
        let mut fleet = FleetState::new(&self.machines);

        if self.warmup > 0 || segments.iter().any(|s| s.warmup > 0) {
            let _prewarm_span = horizon_telemetry::span("sim.prewarm");
            fleet.prewarm(profile);
        }

        let mut gen = source;
        {
            let mut warmup_span = horizon_telemetry::span("sim.warmup");
            warmup_span.record("instructions", self.warmup);
            for inst in gen.by_ref().take(self.warmup as usize) {
                fleet.step(&inst, false);
            }
        }

        let mut out = Vec::with_capacity(segments.len());
        for seg in segments {
            if seg.skip > 0 {
                if self.functional_warming {
                    for inst in gen.by_ref().take(seg.skip as usize) {
                        fleet.warm_skipped(&inst);
                    }
                } else {
                    gen.by_ref().nth(seg.skip as usize - 1);
                }
            }
            for inst in gen.by_ref().take(seg.warmup as usize) {
                fleet.step(&inst, false);
            }
            fleet.flush_repeats();
            let warm = fleet.snapshots();

            let mut trace = TraceCounts::default();
            {
                let mut measure_span = horizon_telemetry::span("sim.measure");
                measure_span.record("instructions", seg.measure);
                for inst in gen.by_ref().take(seg.measure as usize) {
                    trace.note(&inst);
                    fleet.step(&inst, true);
                }
            }

            fleet.flush_repeats();
            out.push(fleet.assemble(&self.machines, profile, &trace, &warm));
        }
        out
    }
}

/// All shared group lanes plus the machine → group index maps.
struct FleetState {
    l1i_lanes: Vec<Cache>,
    data_lanes: Vec<DataFront>,
    cache_backs: Vec<CacheBackLane>,
    itlbs: Vec<Tlb>,
    dtlbs: Vec<Tlb>,
    tlb_backs: Vec<TlbBackLane>,
    predictors: Vec<PredictorLane>,
    /// Event accumulator for the current lane batch.
    batch: LaneBatch,
    /// Whether the buffered batch is measured. Uniform per batch: a flag
    /// change flushes the pending batch first.
    batch_measured: bool,
    /// Per L1I group: the current batch's miss list, `(position, pc)`.
    fetch_miss: Vec<Vec<(u32, u64)>>,
    /// Per data-front group: the current batch's outcome list —
    /// `(position, flags, install line, address)` for events with nonzero
    /// flags only.
    data_out: Vec<Vec<(u32, u8, u64, u64)>>,
    /// Per I-TLB group: the current batch's miss list, `(position, pc)`.
    itlb_miss: Vec<Vec<(u32, u64)>>,
    /// Per D-TLB group: the current batch's miss list,
    /// `(position, address)`.
    dtlb_miss: Vec<Vec<(u32, u64)>>,
    // Repeat-granule fast path: when the current probe address falls in the
    // same line/page as the immediately preceding probe of the same
    // structure set, that line is resident and already MRU in *every* group
    // (the preceding probe made it so, and nothing touched these structures
    // since), so the probe is a guaranteed hit that neither moves LRU order
    // nor can change any later victim choice. The fleet skips the whole
    // group loop and credits the hits in bulk at snapshot boundaries. The
    // granule is the finest across groups, so equality holds per group.
    last_fetch_line: u64,
    last_fetch_page: u64,
    last_data_page: u64,
    l1i_repeats: u64,
    itlb_repeats: u64,
    dtlb_repeats: u64,
    l1i_min_shift: u32,
    itlb_min_shift: u32,
    dtlb_min_shift: u32,
    /// Per machine: index into each group vector.
    l1i_of: Vec<usize>,
    data_of: Vec<usize>,
    cache_back_of: Vec<usize>,
    itlb_of: Vec<usize>,
    dtlb_of: Vec<usize>,
    tlb_back_of: Vec<usize>,
    predictor_of: Vec<usize>,
}

impl FleetState {
    fn new(machines: &[MachineConfig]) -> Self {
        type DataKey = (CacheConfig, PrefetchConfig);
        let data_key = |h: &HierarchyConfig| -> DataKey { (h.l1d, h.prefetch) };

        let (l1i_keys, l1i_of) =
            dedup_groups::<CacheConfig>(machines.iter().map(|m| m.hierarchy.l1i).collect());
        let (data_keys, data_of) =
            dedup_groups(machines.iter().map(|m| data_key(&m.hierarchy)).collect());
        let (back_keys, cache_back_of) =
            dedup_groups::<HierarchyConfig>(machines.iter().map(|m| m.hierarchy).collect());
        let (itlb_keys, itlb_of) =
            dedup_groups::<TlbConfig>(machines.iter().map(|m| m.tlb.l1i).collect());
        let (dtlb_keys, dtlb_of) =
            dedup_groups::<TlbConfig>(machines.iter().map(|m| m.tlb.l1d).collect());
        let (tlb_back_keys, tlb_back_of) =
            dedup_groups::<TlbHierarchyConfig>(machines.iter().map(|m| m.tlb).collect());
        let (pred_keys, predictor_of) =
            dedup_groups::<PredictorKind>(machines.iter().map(|m| m.predictor).collect());

        let cache_backs: Vec<CacheBackLane> = back_keys
            .iter()
            .map(|h| CacheBackLane {
                back: L2Back::new(h),
                l1i_group: l1i_keys.iter().position(|k| *k == h.l1i).unwrap(),
                data_group: data_keys.iter().position(|k| *k == data_key(h)).unwrap(),
            })
            .collect();
        let tlb_backs: Vec<TlbBackLane> = tlb_back_keys
            .iter()
            .map(|t| TlbBackLane {
                l2: t.l2.map(Tlb::new),
                walks_i: 0,
                walks_d: 0,
                itlb_group: itlb_keys.iter().position(|k| *k == t.l1i).unwrap(),
                dtlb_group: dtlb_keys.iter().position(|k| *k == t.l1d).unwrap(),
            })
            .collect();
        let min_shift =
            |it: &mut dyn Iterator<Item = u64>| it.map(|b| b.trailing_zeros()).min().unwrap_or(0);
        // Lane-dedup effectiveness counters: group lanes actually stepped
        // vs. machines riding them (7 machines → 37 lanes in Table IV,
        // where fully independent simulation would step 49 structures).
        let lane_groups = l1i_keys.len()
            + data_keys.len()
            + cache_backs.len()
            + itlb_keys.len()
            + dtlb_keys.len()
            + tlb_backs.len()
            + pred_keys.len();
        horizon_telemetry::counter_add("fleet.lane_groups", lane_groups as u64);
        horizon_telemetry::counter_add("fleet.laned_machines", machines.len() as u64);
        FleetState {
            batch: LaneBatch::new(),
            batch_measured: false,
            fetch_miss: vec![Vec::with_capacity(LANE_BLOCK); l1i_keys.len()],
            data_out: vec![Vec::with_capacity(LANE_BLOCK); data_keys.len()],
            itlb_miss: vec![Vec::with_capacity(LANE_BLOCK); itlb_keys.len()],
            dtlb_miss: vec![Vec::with_capacity(LANE_BLOCK); dtlb_keys.len()],
            last_fetch_line: u64::MAX,
            last_fetch_page: u64::MAX,
            last_data_page: u64::MAX,
            l1i_repeats: 0,
            itlb_repeats: 0,
            dtlb_repeats: 0,
            l1i_min_shift: min_shift(&mut l1i_keys.iter().map(|k| k.line_bytes)),
            itlb_min_shift: min_shift(&mut itlb_keys.iter().map(|k| k.page_bytes)),
            dtlb_min_shift: min_shift(&mut dtlb_keys.iter().map(|k| k.page_bytes)),
            l1i_lanes: l1i_keys.into_iter().map(Cache::new).collect(),
            data_lanes: data_keys
                .into_iter()
                .map(|(l1d, prefetch)| DataFront::new(l1d, prefetch))
                .collect(),
            cache_backs,
            itlbs: itlb_keys.into_iter().map(Tlb::new).collect(),
            dtlbs: dtlb_keys.into_iter().map(Tlb::new).collect(),
            tlb_backs,
            predictors: pred_keys
                .iter()
                .map(|k| PredictorLane {
                    predictor: k.build(),
                    mispredicts: 0,
                })
                .collect(),
            l1i_of,
            data_of,
            cache_back_of,
            itlb_of,
            dtlb_of,
            tlb_back_of,
            predictor_of,
        }
    }

    /// Folds one instruction into the current lane batch, draining through
    /// the group kernels when the batch fills or the measured flag flips.
    ///
    /// Per structure the batch replays the exact per-instruction call
    /// sequence of `CoreSimulator::run` (see [`FleetState::run_batch`]);
    /// structures are mutually independent, so deferring and regrouping
    /// events *between* them is invisible in the counters while letting
    /// every group's kernel run structure-major over a whole block.
    #[inline]
    fn step(&mut self, inst: &Instruction, measured: bool) {
        if measured != self.batch_measured {
            self.run_batch();
            self.batch_measured = measured;
        }
        let pc = inst.pc;
        let pos = self.batch.len;
        self.batch.len += 1;

        // Repeat-granule fast path (see the field docs): a granule-repeat
        // probe is a guaranteed MRU hit in every group, credited in bulk
        // at flush_repeats; only granule-crossing probes become events.
        let fetch_line = pc >> self.l1i_min_shift;
        if fetch_line == self.last_fetch_line {
            self.l1i_repeats += 1;
        } else {
            self.last_fetch_line = fetch_line;
            self.batch.fetch.push((pos, pc));
        }
        let fetch_page = pc >> self.itlb_min_shift;
        if fetch_page == self.last_fetch_page {
            self.itlb_repeats += 1;
        } else {
            self.last_fetch_page = fetch_page;
            self.batch.itlb.push((pos, pc));
        }
        match inst.kind {
            Kind::Load { addr, .. } | Kind::Store { addr, .. } => {
                self.batch.data.push((pos, addr));
                let page = addr >> self.dtlb_min_shift;
                if page == self.last_data_page {
                    self.dtlb_repeats += 1;
                } else {
                    self.last_data_page = page;
                    self.batch.dtlb.push((pos, addr));
                }
            }
            Kind::Branch { taken, .. } => self.batch.branches.push((pc, taken)),
            _ => {}
        }
        if self.batch.len as usize >= LANE_BLOCK {
            self.run_batch();
        }
    }

    /// Drains the buffered batch through the per-group lane kernels.
    ///
    /// Kernel order and the bit-identity argument:
    ///
    /// 1. **L1I groups**, then **data-front groups**: pure front-end
    ///    structures, each consuming its own event list in program order —
    ///    exactly the probe sequence the per-instruction fan-out produced.
    /// 2. **Cache back lanes**: each lane merges its L1I group's miss list
    ///    with its data group's outcome list by batch position — fetch
    ///    before data on the same instruction, and prefetch install before
    ///    demand within one data event — which is exactly the
    ///    per-instruction call sequence of `MemoryHierarchy::access`. The
    ///    shared levels are *one* structure serving both sides, so this
    ///    merge (rather than per-side batches) is what keeps their LRU
    ///    evolution bit-identical.
    /// 3. **I-TLB / D-TLB groups**, then **TLB back lanes** under the same
    ///    position merge (instruction-side refill first, matching
    ///    `TlbHierarchy`'s per-instruction order; the L2 TLB is shared
    ///    between the sides just like the L2/L3 caches).
    /// 4. **Predictor lanes**: the batch's branch list in program order,
    ///    one virtual dispatch per lane per batch.
    ///
    /// A partial batch (segment boundary, measured-flag flip, end of
    /// stream) drains through the identical kernels — the scalar tail is
    /// just a shorter block.
    fn run_batch(&mut self) {
        if self.batch.len == 0 {
            return;
        }
        for (l1i, out) in self.l1i_lanes.iter_mut().zip(&mut self.fetch_miss) {
            out.clear();
            l1i.access_events(&self.batch.fetch, out);
        }
        for (front, out) in self.data_lanes.iter_mut().zip(&mut self.data_out) {
            out.clear();
            for &(pos, addr) in &self.batch.data {
                let (hit, install) = front.access(addr);
                if !hit || install.is_some() {
                    let mut flags = ((!hit) as u8) << 1;
                    let mut line = 0;
                    if let Some(l) = install {
                        flags |= INSTALL;
                        line = l;
                    }
                    out.push((pos, flags, line, addr));
                }
            }
        }
        for lane in &mut self.cache_backs {
            let fm = &self.fetch_miss[lane.l1i_group];
            let dd = &self.data_out[lane.data_group];
            let (mut i, mut j) = (0, 0);
            while i < fm.len() || j < dd.len() {
                let fpos = fm.get(i).map_or(u32::MAX, |e| e.0);
                let dpos = dd.get(j).map_or(u32::MAX, |e| e.0);
                // Fetch precedes data on the same instruction.
                if fpos <= dpos {
                    lane.back.demand(fm[i].1, AccessKind::Fetch);
                    i += 1;
                } else {
                    let (_, flags, line, addr) = dd[j];
                    if flags & INSTALL != 0 {
                        lane.back.install_shared(line);
                    }
                    if flags & DATA_MISS != 0 {
                        lane.back.demand(addr, AccessKind::Data);
                    }
                    j += 1;
                }
            }
        }
        for (tlb, out) in self.itlbs.iter_mut().zip(&mut self.itlb_miss) {
            out.clear();
            tlb.access_events(&self.batch.itlb, out);
        }
        for (tlb, out) in self.dtlbs.iter_mut().zip(&mut self.dtlb_miss) {
            out.clear();
            tlb.access_events(&self.batch.dtlb, out);
        }
        for lane in &mut self.tlb_backs {
            let im = &self.itlb_miss[lane.itlb_group];
            let dm = &self.dtlb_miss[lane.dtlb_group];
            let (mut i, mut j) = (0, 0);
            while i < im.len() || j < dm.len() {
                let ipos = im.get(i).map_or(u32::MAX, |e| e.0);
                let dpos = dm.get(j).map_or(u32::MAX, |e| e.0);
                // Instruction-side refill precedes data-side.
                if ipos <= dpos {
                    if lane.refill(im[i].1) {
                        lane.walks_i += 1;
                    }
                    i += 1;
                } else {
                    if lane.refill(dm[j].1) {
                        lane.walks_d += 1;
                    }
                    j += 1;
                }
            }
        }
        if !self.batch.branches.is_empty() {
            let measured = self.batch_measured;
            for lane in &mut self.predictors {
                let wrong = lane.predictor.execute_lanes(&self.batch.branches);
                if measured {
                    lane.mispredicts += wrong;
                }
            }
        }
        self.batch.clear();
    }

    /// Functional warming for one skipped instruction, SMARTS-style: the
    /// full state update of [`FleetState::step`] with measurement
    /// disabled. Every cache and TLB probe still installs and evicts its
    /// lines/pages and every branch outcome still trains every predictor
    /// lane, so the whole machine state enters the next measured segment
    /// exactly as the full run would have left it; measured counters are
    /// isolated by the per-segment snapshot deltas, so none of these
    /// events are ever reported. What sampling *removes* is the measured
    /// footprint — the instructions whose events must be attributed — not
    /// the state updates, exactly as in SMARTS functional warming.
    #[inline]
    fn warm_skipped(&mut self, inst: &Instruction) {
        self.step(inst, false);
    }

    /// Drains the pending lane batch and folds the pending repeat-granule
    /// hit counts into every group's access counters. Must run before any
    /// counter snapshot.
    fn flush_repeats(&mut self) {
        self.run_batch();
        for l1i in &mut self.l1i_lanes {
            l1i.credit_hits(self.l1i_repeats);
        }
        self.l1i_repeats = 0;
        for tlb in &mut self.itlbs {
            tlb.credit_hits(self.itlb_repeats);
        }
        self.itlb_repeats = 0;
        for tlb in &mut self.dtlbs {
            tlb.credit_hits(self.dtlb_repeats);
        }
        self.dtlb_repeats = 0;
    }

    /// One pass of the prewarm address walks for the whole fleet, riding
    /// the same lane kernels as simulation (batch-prewarm): the region
    /// layout and the address loops run once, probes accumulate into
    /// batches, and one region walk warms every lane of every group. Per
    /// structure the probe sequence is identical to a per-machine prewarm.
    fn prewarm(&mut self, profile: &WorkloadProfile) {
        for (base, bytes) in horizon_trace::region_layout(profile) {
            if bytes <= PREWARM_LIMIT {
                for addr in (base..base + bytes).step_by(64) {
                    self.prewarm_data(addr);
                }
            }
        }
        let (code_base, code_bytes) = horizon_trace::hot_code_layout(profile);
        for addr in (code_base..code_base + code_bytes).step_by(64) {
            self.prewarm_fetch(addr);
        }
        if profile.kernel_fraction() > 0.0 {
            let (kbase, kbytes) = horizon_trace::kernel_code_layout();
            for addr in (kbase..kbase + kbytes).step_by(64) {
                self.prewarm_fetch(addr);
            }
        }
        // The tail batch stays pending: warmup instructions are unmeasured
        // too, so they share it; any snapshot path drains it first.
    }

    /// Data-side prewarm probe: a data access with no fetch side, batched
    /// like any other event.
    fn prewarm_data(&mut self, addr: u64) {
        let pos = self.batch.len;
        self.batch.len += 1;
        self.batch.data.push((pos, addr));
        let page = addr >> self.dtlb_min_shift;
        if page == self.last_data_page {
            self.dtlb_repeats += 1;
        } else {
            self.last_data_page = page;
            self.batch.dtlb.push((pos, addr));
        }
        if self.batch.len as usize >= LANE_BLOCK {
            self.run_batch();
        }
    }

    /// Fetch-side prewarm probe: an instruction fetch with no data side.
    fn prewarm_fetch(&mut self, addr: u64) {
        let pos = self.batch.len;
        self.batch.len += 1;
        let line = addr >> self.l1i_min_shift;
        if line == self.last_fetch_line {
            self.l1i_repeats += 1;
        } else {
            self.last_fetch_line = line;
            self.batch.fetch.push((pos, addr));
        }
        let page = addr >> self.itlb_min_shift;
        if page == self.last_fetch_page {
            self.itlb_repeats += 1;
        } else {
            self.last_fetch_page = page;
            self.batch.itlb.push((pos, addr));
        }
        if self.batch.len as usize >= LANE_BLOCK {
            self.run_batch();
        }
    }

    fn snapshots(&self) -> GroupSnapshots {
        GroupSnapshots {
            l1is: self
                .l1i_lanes
                .iter()
                .map(|c| (c.accesses(), c.misses()))
                .collect(),
            datas: self
                .data_lanes
                .iter()
                .map(|f| (f.l1d().accesses(), f.l1d().misses()))
                .collect(),
            cache_backs: self
                .cache_backs
                .iter()
                .map(|l| {
                    let (l2i_a, l2i_m) = l.back.instruction_side();
                    let (l2d_a, l2d_m) = l.back.data_side();
                    let (l3_a, l3_m) = l.back.l3_counts();
                    (
                        l2i_a,
                        l2i_m,
                        l2d_a,
                        l2d_m,
                        l3_a,
                        l3_m,
                        l.back.memory_accesses(),
                    )
                })
                .collect(),
            itlbs: self.itlbs.iter().map(|t| t.misses()).collect(),
            dtlbs: self.dtlbs.iter().map(|t| t.misses()).collect(),
            tlb_backs: self
                .tlb_backs
                .iter()
                .map(|l| (l.walks_i, l.walks_d))
                .collect(),
            predictors: self.predictors.iter().map(|l| l.mispredicts).collect(),
        }
    }

    fn assemble(
        &self,
        machines: &[MachineConfig],
        profile: &WorkloadProfile,
        trace: &TraceCounts,
        warm: &GroupSnapshots,
    ) -> Vec<Counters> {
        let end = self.snapshots();
        machines
            .iter()
            .enumerate()
            .map(|(m, machine)| {
                let mut c = Counters {
                    dependency_intensity: profile.dependency_intensity(),
                    freq_ghz: machine.freq_ghz,
                    ..Default::default()
                };
                c.instructions = trace.instructions;
                c.kernel_instructions = trace.kernel_instructions;
                c.loads = trace.loads;
                c.stores = trace.stores;
                c.branches = trace.branches;
                c.taken_branches = trace.taken_branches;
                c.fp_ops = trace.fp_ops;
                c.simd_ops = trace.simd_ops;
                let pg = self.predictor_of[m];
                c.mispredicts = self.predictors[pg].mispredicts - warm.predictors[pg];

                let ig = self.l1i_of[m];
                c.l1i_accesses = end.l1is[ig].0 - warm.l1is[ig].0;
                c.l1i_misses = end.l1is[ig].1 - warm.l1is[ig].1;
                let dg = self.data_of[m];
                c.l1d_accesses = end.datas[dg].0 - warm.datas[dg].0;
                c.l1d_misses = end.datas[dg].1 - warm.datas[dg].1;

                let bg = self.cache_back_of[m];
                let (w, e) = (warm.cache_backs[bg], end.cache_backs[bg]);
                c.l2i_accesses = e.0 - w.0;
                c.l2i_misses = e.1 - w.1;
                c.l2d_accesses = e.2 - w.2;
                c.l2d_misses = e.3 - w.3;
                c.l3_accesses = e.4 - w.4;
                c.l3_misses = e.5 - w.5;
                c.memory_accesses = e.6 - w.6;

                let ig = self.itlb_of[m];
                c.itlb_misses = end.itlbs[ig] - warm.itlbs[ig];
                let dg = self.dtlb_of[m];
                c.dtlb_misses = end.dtlbs[dg] - warm.dtlbs[dg];
                let tg = self.tlb_back_of[m];
                c.page_walks_instruction = end.tlb_backs[tg].0 - warm.tlb_backs[tg].0;
                c.page_walks_data = end.tlb_backs[tg].1 - warm.tlb_backs[tg].1;

                // Per-machine telemetry, so fleet totals equal the sums the
                // independent runs would have produced.
                horizon_telemetry::counter_add("sim.instructions", c.instructions);
                horizon_telemetry::counter_add("sim.l1d_accesses", c.l1d_accesses);
                horizon_telemetry::counter_add("sim.l1d_misses", c.l1d_misses);
                horizon_telemetry::counter_add("sim.l3_accesses", c.l3_accesses);
                horizon_telemetry::counter_add("sim.l3_misses", c.l3_misses);
                horizon_telemetry::counter_add("sim.branch_mispredicts", c.mispredicts);

                c.cpi_stack = CpiStack::compute(&c, machine);
                c
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulator::CoreSimulator;
    use horizon_trace::Region;

    #[test]
    fn empty_fleet_returns_no_counters() {
        let p = WorkloadProfile::builder("w").build().unwrap();
        assert!(FleetSimulator::new(&[]).run(&p, 10_000, 1).is_empty());
    }

    #[test]
    fn single_machine_fleet_equals_core_simulator() {
        let p = WorkloadProfile::builder("w")
            .loads(0.3)
            .stores(0.1)
            .branches(0.15)
            .build()
            .unwrap();
        let m = MachineConfig::skylake_i7_6700();
        let fleet = FleetSimulator::new(std::slice::from_ref(&m))
            .with_warmup(20_000)
            .run(&p, 100_000, 7);
        let solo = CoreSimulator::new(&m)
            .with_warmup(20_000)
            .run(&p, 100_000, 7);
        assert_eq!(fleet, vec![solo]);
    }

    #[test]
    fn full_table_iv_fleet_matches_independent_runs() {
        // The fixed-vector correctness gate: all seven paper machines, a
        // memory-heavy profile, warmup enabled.
        let p = WorkloadProfile::builder("w")
            .loads(0.35)
            .stores(0.12)
            .branches(0.18)
            .regions(vec![
                Region::random(24 << 10, 0.6),
                Region::random(3 << 20, 0.4),
            ])
            .build()
            .unwrap();
        let machines = MachineConfig::table_iv_machines();
        let fleet = FleetSimulator::new(&machines)
            .with_warmup(30_000)
            .run(&p, 120_000, 42);
        for (c, m) in fleet.iter().zip(&machines) {
            let solo = CoreSimulator::new(m)
                .with_warmup(30_000)
                .run(&p, 120_000, 42);
            assert_eq!(*c, solo, "machine {}", m.name);
        }
    }

    #[test]
    fn zero_warmup_fleet_matches() {
        let p = WorkloadProfile::builder("w").loads(0.2).build().unwrap();
        let machines = [MachineConfig::core2_e5405(), MachineConfig::opteron_2435()];
        let fleet = FleetSimulator::new(&machines).run(&p, 50_000, 3);
        for (c, m) in fleet.iter().zip(&machines) {
            assert_eq!(*c, CoreSimulator::new(m).run(&p, 50_000, 3));
        }
    }

    #[test]
    fn duplicate_machines_get_identical_counters() {
        let p = WorkloadProfile::builder("w").loads(0.3).build().unwrap();
        let m = MachineConfig::sparc_t4();
        let fleet = FleetSimulator::new(&[m.clone(), m]).run(&p, 30_000, 9);
        assert_eq!(fleet[0], fleet[1]);
    }

    #[test]
    fn group_dedup_is_semantically_invisible() {
        // Two machines that differ ONLY in shared levels: same L1 front
        // ends, same predictor. The fleet simulates the fronts once; the
        // counters must still match machine-by-machine independent runs.
        let a = MachineConfig::skylake_i7_6700();
        let mut b = a.clone();
        b.name = "variant".into();
        b.hierarchy.l3 = Some(CacheConfig::new(2 << 20, 16));
        b.tlb.l2 = None;
        let p = WorkloadProfile::builder("w")
            .loads(0.35)
            .regions(vec![Region::random(4 << 20, 1.0)])
            .build()
            .unwrap();
        let machines = [a, b];
        let fleet = FleetSimulator::new(&machines)
            .with_warmup(10_000)
            .run(&p, 60_000, 11);
        for (c, m) in fleet.iter().zip(&machines) {
            assert_eq!(
                *c,
                CoreSimulator::new(m)
                    .with_warmup(10_000)
                    .run(&p, 60_000, 11),
                "machine {}",
                m.name
            );
        }
    }
}
