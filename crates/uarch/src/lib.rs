//! Single-core microarchitecture simulation.
//!
//! This crate is the stand-in for the paper's seven physical machines and
//! Linux `perf`: it executes a synthetic instruction stream (from
//! [`horizon_trace`]) through configurable cache hierarchies, TLBs and branch
//! predictors, and reports hardware-counter-style measurements —
//! MPKI/MPMI metrics, a top-down CPI stack (Figure 1), and RAPL-style power
//! estimates (Figure 12).
//!
//! The seven machine configurations of the paper's Table IV are provided by
//! [`MachineConfig`] constructors; arbitrary configurations can be built for
//! sensitivity studies (Table IX).
//!
//! # Example
//!
//! ```
//! use horizon_trace::WorkloadProfile;
//! use horizon_uarch::{CoreSimulator, MachineConfig};
//!
//! let profile = WorkloadProfile::builder("demo").loads(0.3).build()?;
//! let machine = MachineConfig::skylake_i7_6700();
//! let counters = CoreSimulator::new(&machine).run(&profile, 100_000, 42);
//! assert_eq!(counters.instructions, 100_000);
//! assert!(counters.cpi() > 0.0);
//! # Ok::<(), horizon_trace::ProfileError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod branch;
mod cache;
mod counters;
mod fleet;
mod hierarchy;
mod lanes;
mod lru;
mod machine;
mod power;
mod simulator;
mod tlb;
mod topdown;

pub use branch::{BranchPredictor, PredictorKind};
pub use cache::{Cache, CacheConfig};
pub use counters::Counters;
pub use fleet::{FleetSimulator, TraceSegment};
pub use hierarchy::{AccessKind, HierarchyConfig, MemoryHierarchy, PrefetchConfig};
pub use machine::{Isa, LatencyModel, MachineConfig};
pub use power::{PowerModel, PowerReport};
pub use simulator::CoreSimulator;
pub use tlb::{Tlb, TlbConfig, TlbHierarchy, TlbHierarchyConfig};
pub use topdown::CpiStack;
