//! Property-based tests for the microarchitecture simulator.

use horizon_trace::{Region, WorkloadProfile};
use horizon_uarch::{Cache, CacheConfig, CoreSimulator, MachineConfig, Tlb, TlbConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cache_misses_never_exceed_accesses(
        addrs in proptest::collection::vec(0u64..(1 << 20), 1..500),
        capacity_kb in 1u64..64,
        ways_pow in 0u32..3,
    ) {
        let ways = 1 << ways_pow;
        let mut c = Cache::new(CacheConfig::new(capacity_kb.next_power_of_two() << 10, ways));
        for &a in &addrs {
            c.access(a);
        }
        prop_assert!(c.misses() <= c.accesses());
        prop_assert_eq!(c.accesses(), addrs.len() as u64);
    }

    #[test]
    fn cache_repeat_trace_second_pass_fits_or_misses_consistently(
        addrs in proptest::collection::vec(0u64..(1 << 14), 1..200),
    ) {
        // A cache as large as the address space: second pass never misses.
        let mut c = Cache::new(CacheConfig::new(1 << 14, 4));
        for &a in &addrs {
            c.access(a);
        }
        let cold = c.misses();
        for &a in &addrs {
            prop_assert!(c.access(a) || false == true); // all hits
        }
        prop_assert_eq!(c.misses(), cold);
    }

    #[test]
    fn tlb_miss_monotone_in_entries(
        pages in proptest::collection::vec(0u64..256, 50..300),
    ) {
        let run = |entries: u32| {
            let mut t = Tlb::new(TlbConfig::new(entries, entries));
            for &p in &pages {
                t.access(p * 4096);
            }
            t.misses()
        };
        // Fully associative LRU TLBs obey inclusion: more entries, fewer misses.
        prop_assert!(run(64) <= run(16));
        prop_assert!(run(16) <= run(4));
    }

    #[test]
    fn simulator_counter_invariants(seed in any::<u64>(), loads in 0.05..0.4f64) {
        let p = WorkloadProfile::builder("p")
            .loads(loads)
            .stores(0.05)
            .branches(0.1)
            .regions(vec![Region::random(1 << 18, 1.0)])
            .build()
            .unwrap();
        let c = CoreSimulator::new(&MachineConfig::skylake_i7_6700()).run(&p, 20_000, seed);
        prop_assert_eq!(c.instructions, 20_000);
        prop_assert_eq!(c.l1d_accesses, c.loads + c.stores);
        prop_assert!(c.l1d_misses <= c.l1d_accesses);
        prop_assert!(c.l2d_accesses <= c.l1d_misses);
        prop_assert!(c.l2d_misses <= c.l2d_accesses);
        prop_assert!(c.l3_misses <= c.l3_accesses);
        prop_assert!(c.taken_branches <= c.branches);
        prop_assert!(c.mispredicts <= c.branches);
        prop_assert!(c.cpi().is_finite() && c.cpi() > 0.0);
        // CPI stack components are non-negative.
        prop_assert!(c.cpi_stack.frontend >= 0.0);
        prop_assert!(c.cpi_stack.bad_speculation >= 0.0);
        prop_assert!(c.cpi_stack.memory >= 0.0);
        prop_assert!(c.cpi_stack.core >= 0.0);
    }

    #[test]
    fn all_machines_accept_any_valid_profile(machine_idx in 0usize..7, seed in 0u64..8) {
        let p = WorkloadProfile::builder("p")
            .loads(0.3)
            .branches(0.12)
            .fp(0.1)
            .build()
            .unwrap();
        let machines = MachineConfig::table_iv_machines();
        let c = CoreSimulator::new(&machines[machine_idx]).run(&p, 10_000, seed);
        prop_assert_eq!(c.instructions, 10_000);
        prop_assert!(c.cpi() >= 1.0 / machines[machine_idx].issue_width);
    }
}
