//! Replay ≡ regenerate: the acceptance gate for the trace store.
//!
//! A packed trace written through `horizon-tracestore` and replayed into
//! the simulators must produce counters bit-identical to expanding the
//! stream live from the profile — for every Table IV machine, through
//! both the fleet kernel and the single-core simulator. This is what
//! licenses the engine to substitute a stored trace for regeneration
//! without any result ever changing.

use horizon_trace::TraceGenerator;
use horizon_tracestore::{TraceKey, TraceStore};
use horizon_uarch::{CoreSimulator, FleetSimulator, MachineConfig};

const WINDOW: u64 = 60_000;
const WARMUP: u64 = 15_000;
const SEED: u64 = 42;

/// Writes the `(profile, SEED)` stream into a fresh store and returns the
/// store plus the key, asserting the published density stays under the
/// 8-bytes-per-instruction format budget.
fn store_trace(
    tag: &str,
    profile: &horizon_trace::WorkloadProfile,
) -> (TraceStore, TraceKey, std::path::PathBuf) {
    let total = WARMUP + WINDOW;
    let dir = std::env::temp_dir().join(format!(
        "horizon-replay-equivalence-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let store = TraceStore::open(&dir).unwrap();
    let key = TraceKey::of(profile, SEED, total);
    let mut pending = store.begin(&key, total).unwrap();
    for inst in TraceGenerator::new(profile, SEED).take(total as usize) {
        pending.push(&inst).unwrap();
    }
    let bytes = pending.publish().unwrap();
    assert!(
        bytes <= 8 * total,
        "{bytes} bytes for {total} instructions breaks the 8 B/inst budget"
    );
    (store, key, dir)
}

#[test]
fn fleet_replay_is_bit_identical_on_all_table_iv_machines() {
    let profile = horizon_workloads::cpu2017::all()[0].profile().clone();
    let machines = MachineConfig::table_iv_machines();
    assert_eq!(machines.len(), 7);
    let (store, key, dir) = store_trace("fleet", &profile);

    let fleet = FleetSimulator::new(&machines).with_warmup(WARMUP);
    let regenerated = fleet.run(&profile, WINDOW, SEED);
    let reader = store.load(&key).expect("published trace loads");
    let replayed = fleet.run_trace(&profile, WINDOW, reader.iter());

    assert_eq!(replayed.len(), 7);
    for ((replay, fresh), machine) in replayed.iter().zip(&regenerated).zip(&machines) {
        assert_eq!(replay, fresh, "counters diverge on {}", machine.name);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn core_replay_is_bit_identical_on_all_table_iv_machines() {
    let profile = horizon_workloads::cpu2017::all()[1].profile().clone();
    let (store, key, dir) = store_trace("core", &profile);

    for machine in MachineConfig::table_iv_machines() {
        let sim = CoreSimulator::new(&machine).with_warmup(WARMUP);
        let fresh = sim.run(&profile, WINDOW, SEED);
        let reader = store.load(&key).expect("published trace loads");
        let replay = sim.run_trace(&profile, WINDOW, reader.iter());
        assert_eq!(replay, fresh, "counters diverge on {}", machine.name);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn one_stored_trace_feeds_every_machine_and_split() {
    // The store keys on (profile, seed, total window), not on the
    // warmup/measure split: any split summing to the stored total replays
    // exactly. This is what lets differently-configured campaigns share
    // traces.
    let profile = horizon_workloads::cpu2017::all()[2].profile().clone();
    let (store, key, dir) = store_trace("split", &profile);
    let machines = [MachineConfig::skylake_i7_6700(), MachineConfig::sparc_t4()];

    for (warmup, window) in [(WARMUP, WINDOW), (0, WARMUP + WINDOW), (WINDOW, WARMUP)] {
        let fleet = FleetSimulator::new(&machines).with_warmup(warmup);
        let fresh = fleet.run(&profile, window, SEED);
        let reader = store.load(&key).expect("published trace loads");
        let replay = fleet.run_trace(&profile, window, reader.iter());
        assert_eq!(replay, fresh, "diverges at split {warmup}+{window}");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
