//! Property-based equivalence gate for the fleet kernel.
//!
//! The contract of [`FleetSimulator`] is exact: for any workload profile,
//! seed, window and warmup, streaming the trace once across N machines
//! must produce counters bit-identical to N independent
//! [`CoreSimulator`] runs. These properties randomize the trace-defining
//! inputs over all seven paper machines and compare the *serialized*
//! counters byte-for-byte, so even a float that renders differently
//! would fail.

use horizon_trace::{Region, WorkloadProfile};
use horizon_uarch::{CoreSimulator, FleetSimulator, MachineConfig};
use proptest::prelude::*;

/// A randomized but always-valid profile. The mix fractions are kept
/// comfortably inside the builder's validity envelope while still
/// exercising load/store/branch/fp extremes and one- or two-region
/// memory footprints from 64 KiB up to 16 MiB.
fn arb_profile() -> impl Strategy<Value = WorkloadProfile> {
    (
        0.05..0.35f64, // loads
        0.01..0.15f64, // stores
        0.05..0.25f64, // branches
        0.0..0.15f64,  // fp
        16u32..24,     // log2 primary region bytes
        // Optional second (streaming) region.
        prop_oneof![Just(None), (18u32..22).prop_map(Some)],
    )
        .prop_map(|(loads, stores, branches, fp, lg, second)| {
            let mut regions = vec![Region::random(1 << lg, 1.0)];
            if let Some(lg2) = second {
                regions.push(Region::streaming(1 << lg2, 0.5, 64));
            }
            WorkloadProfile::builder("fleet-prop")
                .loads(loads)
                .stores(stores)
                .branches(branches)
                .fp(fp)
                .regions(regions)
                .build()
                .expect("generated profile stays within validity envelope")
        })
}

fn counters_json<T: serde::Serialize>(c: &T) -> String {
    serde_json::to_string(c).expect("counters serialize")
}

proptest! {
    // Each case runs 8 simulations (7 fleet lanes stream once + 7
    // independent), so keep the case count modest; the fixed-vector
    // gate in `fleet.rs` covers the deterministic paper configuration.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Fleet counters are byte-identical to independent per-machine runs
    /// across random profiles, seeds, windows and warmups.
    #[test]
    fn fleet_matches_independent_runs(
        profile in arb_profile(),
        seed in any::<u64>(),
        window in 5_000u64..60_000,
        warmup in prop_oneof![Just(0u64), 1_000u64..20_000],
    ) {
        let machines = MachineConfig::table_iv_machines();
        let fleet = FleetSimulator::new(&machines)
            .with_warmup(warmup)
            .run(&profile, window, seed);
        prop_assert_eq!(fleet.len(), machines.len());
        for (machine, fleet_counters) in machines.iter().zip(&fleet) {
            let solo = CoreSimulator::new(machine)
                .with_warmup(warmup)
                .run(&profile, window, seed);
            prop_assert_eq!(
                counters_json(fleet_counters),
                counters_json(&solo),
                "fleet diverged from CoreSimulator on {}",
                machine.name
            );
        }
    }

    /// Subsetting the fleet never changes any machine's counters: lane
    /// state is fully isolated, so simulating fewer machines together is
    /// indistinguishable from simulating more.
    #[test]
    fn fleet_subsets_are_consistent(
        profile in arb_profile(),
        seed in any::<u64>(),
        split in 1usize..6,
    ) {
        let machines = MachineConfig::table_iv_machines();
        let full = FleetSimulator::new(&machines)
            .with_warmup(2_000)
            .run(&profile, 15_000, seed);
        let front = FleetSimulator::new(&machines[..split])
            .with_warmup(2_000)
            .run(&profile, 15_000, seed);
        let back = FleetSimulator::new(&machines[split..])
            .with_warmup(2_000)
            .run(&profile, 15_000, seed);
        let stitched: Vec<String> = front.iter().chain(&back).map(counters_json).collect();
        let whole: Vec<String> = full.iter().map(counters_json).collect();
        prop_assert_eq!(stitched, whole);
    }
}
