//! Property-based equivalence gate for the fleet kernel.
//!
//! The contract of [`FleetSimulator`] is exact: for any workload profile,
//! seed, window and warmup, streaming the trace once across N machines
//! must produce counters bit-identical to N independent
//! [`CoreSimulator`] runs. These properties randomize the trace-defining
//! inputs over all seven paper machines and compare the *serialized*
//! counters byte-for-byte, so even a float that renders differently
//! would fail.

use horizon_trace::{Region, TraceGenerator, WorkloadProfile};
use horizon_uarch::{
    CacheConfig, CoreSimulator, Counters, FleetSimulator, MachineConfig, TlbConfig, TraceSegment,
};
use proptest::prelude::*;

/// A randomized but always-valid profile. The mix fractions are kept
/// comfortably inside the builder's validity envelope while still
/// exercising load/store/branch/fp extremes and one- or two-region
/// memory footprints from 64 KiB up to 16 MiB.
fn arb_profile() -> impl Strategy<Value = WorkloadProfile> {
    (
        0.05..0.35f64, // loads
        0.01..0.15f64, // stores
        0.05..0.25f64, // branches
        0.0..0.15f64,  // fp
        16u32..24,     // log2 primary region bytes
        // Optional second (streaming) region.
        prop_oneof![Just(None), (18u32..22).prop_map(Some)],
    )
        .prop_map(|(loads, stores, branches, fp, lg, second)| {
            let mut regions = vec![Region::random(1 << lg, 1.0)];
            if let Some(lg2) = second {
                regions.push(Region::streaming(1 << lg2, 0.5, 64));
            }
            WorkloadProfile::builder("fleet-prop")
                .loads(loads)
                .stores(stores)
                .branches(branches)
                .fp(fp)
                .regions(regions)
                .build()
                .expect("generated profile stays within validity envelope")
        })
}

fn counters_json<T: serde::Serialize>(c: &T) -> String {
    serde_json::to_string(c).expect("counters serialize")
}

/// The raw event counts of one [`Counters`], in a fixed order. Derived
/// floats (CPI stack, MPKI) are per-window ratios and do not sum across
/// segments; the underlying events do.
fn event_counts(c: &Counters) -> [u64; 24] {
    [
        c.instructions,
        c.loads,
        c.stores,
        c.branches,
        c.taken_branches,
        c.mispredicts,
        c.fp_ops,
        c.simd_ops,
        c.kernel_instructions,
        c.l1i_accesses,
        c.l1i_misses,
        c.l1d_accesses,
        c.l1d_misses,
        c.l2i_accesses,
        c.l2i_misses,
        c.l2d_accesses,
        c.l2d_misses,
        c.l3_accesses,
        c.l3_misses,
        c.memory_accesses,
        c.itlb_misses,
        c.dtlb_misses,
        c.page_walks_instruction,
        c.page_walks_data,
    ]
}

/// A deliberately degenerate machine: direct-mapped (1-way) L1s — the
/// wide-scan kernels' shortest scalar tail — and the SPARC-style huge
/// fully-associative TLBs (512 ways in one set, the widest scan in any
/// paper machine, forced through the way-hint path).
fn degenerate_machine() -> MachineConfig {
    let mut m = MachineConfig::table_iv_machines()[0].clone();
    m.name = "degenerate-1way-512fa".into();
    m.hierarchy.l1i = CacheConfig::new(32 << 10, 1);
    m.hierarchy.l1d = CacheConfig::new(32 << 10, 1);
    m.tlb.l1i = TlbConfig::new(64, 64);
    m.tlb.l1d = TlbConfig::new(512, 512);
    m.tlb.l2 = None;
    m
}

proptest! {
    // Each case runs 8 simulations (7 fleet lanes stream once + 7
    // independent), so keep the case count modest; the fixed-vector
    // gate in `fleet.rs` covers the deterministic paper configuration.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Fleet counters are byte-identical to independent per-machine runs
    /// across random profiles, seeds, windows and warmups.
    #[test]
    fn fleet_matches_independent_runs(
        profile in arb_profile(),
        seed in any::<u64>(),
        window in 5_000u64..60_000,
        warmup in prop_oneof![Just(0u64), 1_000u64..20_000],
    ) {
        let machines = MachineConfig::table_iv_machines();
        let fleet = FleetSimulator::new(&machines)
            .with_warmup(warmup)
            .run(&profile, window, seed);
        prop_assert_eq!(fleet.len(), machines.len());
        for (machine, fleet_counters) in machines.iter().zip(&fleet) {
            let solo = CoreSimulator::new(machine)
                .with_warmup(warmup)
                .run(&profile, window, seed);
            prop_assert_eq!(
                counters_json(fleet_counters),
                counters_json(&solo),
                "fleet diverged from CoreSimulator on {}",
                machine.name
            );
        }
    }

    /// Subsetting the fleet never changes any machine's counters: lane
    /// state is fully isolated, so simulating fewer machines together is
    /// indistinguishable from simulating more.
    #[test]
    fn fleet_subsets_are_consistent(
        profile in arb_profile(),
        seed in any::<u64>(),
        split in 1usize..6,
    ) {
        let machines = MachineConfig::table_iv_machines();
        let full = FleetSimulator::new(&machines)
            .with_warmup(2_000)
            .run(&profile, 15_000, seed);
        let front = FleetSimulator::new(&machines[..split])
            .with_warmup(2_000)
            .run(&profile, 15_000, seed);
        let back = FleetSimulator::new(&machines[split..])
            .with_warmup(2_000)
            .run(&profile, 15_000, seed);
        let stitched: Vec<String> = front.iter().chain(&back).map(counters_json).collect();
        let whole: Vec<String> = full.iter().map(counters_json).collect();
        prop_assert_eq!(stitched, whole);
    }

    /// The sampled path: consecutive gap-free measured segments through
    /// `run_trace_segments` see exactly the events of one contiguous
    /// window — per machine, the per-segment event counts sum to the
    /// single-window counts. Exercises the lane batch draining at segment
    /// boundaries (each boundary snapshot flushes a partial batch through
    /// the same kernels as a full block).
    #[test]
    fn segment_deltas_sum_to_single_window(
        profile in arb_profile(),
        seed in any::<u64>(),
        n1 in 2_000u64..12_000,
        n2 in 1u64..12_000,
        n3 in 2_000u64..12_000,
    ) {
        let machines = MachineConfig::table_iv_machines();
        let seg = |measure| TraceSegment { skip: 0, warmup: 0, measure };
        let fleet = FleetSimulator::new(&machines);
        let split = fleet.run_trace_segments(
            &profile,
            &[seg(n1), seg(n2), seg(n3)],
            TraceGenerator::new(&profile, seed),
        );
        let whole = fleet.run_trace_segments(
            &profile,
            &[seg(n1 + n2 + n3)],
            TraceGenerator::new(&profile, seed),
        );
        for (m, machine) in machines.iter().enumerate() {
            let mut summed = [0u64; 24];
            for seg_counters in &split {
                for (acc, v) in summed.iter_mut().zip(event_counts(&seg_counters[m])) {
                    *acc += v;
                }
            }
            prop_assert_eq!(
                summed,
                event_counts(&whole[0][m]),
                "segment sums diverged on {}",
                machine.name
            );
        }
    }

    /// With functional warming, a skipped prefix is the same state update
    /// as explicit warmup: `skip + warmup` splits of the same unmeasured
    /// prefix produce byte-identical counters.
    #[test]
    fn functional_warming_absorbs_skip_into_warmup(
        profile in arb_profile(),
        seed in any::<u64>(),
        skip in 1_000u64..10_000,
        warmup in 1u64..5_000,
        measure in 3_000u64..15_000,
    ) {
        let machines = MachineConfig::table_iv_machines();
        let fleet = FleetSimulator::new(&machines).with_functional_warming(true);
        let skipped = fleet.run_trace_segments(
            &profile,
            &[TraceSegment { skip, warmup, measure }],
            TraceGenerator::new(&profile, seed),
        );
        let warmed = fleet.run_trace_segments(
            &profile,
            &[TraceSegment { skip: 0, warmup: skip + warmup, measure }],
            TraceGenerator::new(&profile, seed),
        );
        prop_assert_eq!(counters_json(&skipped), counters_json(&warmed));
    }
}

/// Degenerate geometries pin the kernel edge cases the proptests' paper
/// machines never reach: 1-way sets (pure scalar-tail scans), 512-way
/// fully-associative TLBs (the widest wide-op path plus way-hint), and a
/// single-machine fleet (every group has exactly one lane).
#[test]
fn degenerate_geometries_match_core_simulator() {
    let profile = WorkloadProfile::builder("fleet-degenerate")
        .loads(0.3)
        .stores(0.1)
        .branches(0.15)
        .regions(vec![
            Region::random(1 << 22, 1.0),
            Region::streaming(1 << 20, 0.5, 64),
        ])
        .build()
        .expect("valid profile");
    let degenerate = degenerate_machine();

    // Single-machine fleet of the degenerate config.
    let solo_fleet = FleetSimulator::new(std::slice::from_ref(&degenerate))
        .with_warmup(5_000)
        .run(&profile, 40_000, 99);
    let solo_core = CoreSimulator::new(&degenerate)
        .with_warmup(5_000)
        .run(&profile, 40_000, 99);
    assert_eq!(counters_json(&solo_fleet[0]), counters_json(&solo_core));

    // Mixed fleet: the degenerate machine alongside two paper machines, so
    // its one-lane groups batch next to multi-lane groups.
    let paper = MachineConfig::table_iv_machines();
    let mixed = vec![degenerate.clone(), paper[0].clone(), paper[4].clone()];
    let fleet = FleetSimulator::new(&mixed)
        .with_warmup(5_000)
        .run(&profile, 40_000, 99);
    for (machine, fleet_counters) in mixed.iter().zip(&fleet) {
        let solo = CoreSimulator::new(machine)
            .with_warmup(5_000)
            .run(&profile, 40_000, 99);
        assert_eq!(
            counters_json(fleet_counters),
            counters_json(&solo),
            "mixed fleet diverged from CoreSimulator on {}",
            machine.name
        );
    }
}
