//! Fleet kernel vs independent per-machine simulation.
//!
//! Three configurations over the same workload (the exchange2 profile, a
//! 2M-instruction measured window with 400k warmup, seed 42):
//!
//! - `independent_7` — seven [`CoreSimulator`] runs, one per Table IV
//!   machine; the trace is regenerated and re-streamed seven times. This
//!   is what `Campaign::measure_profiles_builtin` did before the fleet
//!   kernel.
//! - `fleet_7` — one [`FleetSimulator`] pass over all seven machines:
//!   the trace streams once and every machine's structures step per
//!   instruction, with config-identical front-end structures deduplicated
//!   across machines.
//! - `fleet_1` — a single-machine fleet, isolating the kernel's fixed
//!   overhead relative to `CoreSimulator` for the degenerate batch.
//!
//! The headline number is `independent_7` median / `fleet_7` median; the
//! acceptance floor is 2.5x and measured medians are recorded in
//! `BENCH_sim.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use horizon_uarch::{CoreSimulator, FleetSimulator, MachineConfig};
use horizon_workloads::cpu2017;

const WINDOW: u64 = 2_000_000;
const WARMUP: u64 = 400_000;
const SEED: u64 = 42;

fn bench_fleet_vs_independent(c: &mut Criterion) {
    let profile = cpu2017::speed_int()[8].profile().clone();
    assert_eq!(profile.name(), "648.exchange2_s");
    let machines = MachineConfig::table_iv_machines();

    let mut group = c.benchmark_group("fleet");
    group.sample_size(15);

    group.bench_function("independent_7", |b| {
        b.iter(|| {
            machines
                .iter()
                .map(|m| {
                    CoreSimulator::new(m)
                        .with_warmup(WARMUP)
                        .run(&profile, WINDOW, SEED)
                })
                .collect::<Vec<_>>()
        })
    });

    group.bench_function("fleet_7", |b| {
        b.iter(|| {
            FleetSimulator::new(&machines)
                .with_warmup(WARMUP)
                .run(&profile, WINDOW, SEED)
        })
    });

    group.bench_function("fleet_1", |b| {
        b.iter(|| {
            FleetSimulator::new(&machines[..1])
                .with_warmup(WARMUP)
                .run(&profile, WINDOW, SEED)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_fleet_vs_independent);
criterion_main!(benches);
