//! Scalar vs batched LRU probe kernels at the two geometry extremes the
//! fleet simulates.
//!
//! The lane-stepping kernel's per-structure entry points
//! ([`Cache::access_events`] / [`Tlb::access_events`] and the batched
//! install paths) must beat — or at minimum match — per-event scalar
//! calls on the same probe stream, or the fleet batching buys nothing at
//! the structure level. Two geometries bracket the design space:
//!
//! - `cache_32k_8w` — a 64-set × 8-way L1 (every x86 machine in
//!   Table IV): short scans, set-index spread, memo-dominated.
//! - `tlb_512_fa` — the SPARC M7's 512-entry fully-associative DTLB:
//!   one set, the widest wide-op scan, way-hint-dominated.
//!
//! The probe stream mixes granule-repeat runs with strided sweeps and
//! random jumps so memo, hint, hit-scan and miss/victim paths all
//! execute. Medians are recorded in `BENCH_sim.json` under
//! `lru_kernels`.

use criterion::{criterion_group, criterion_main, Criterion};
use horizon_uarch::{Cache, CacheConfig, Tlb, TlbConfig};

/// Events per batched call — mirrors the fleet kernel's lane block.
const BLOCK: usize = 256;
/// Total probes per bench iteration.
const PROBES: usize = 1 << 18;

/// Deterministic probe stream: repeat-heavy runs over a hot footprint
/// with periodic strided sweeps, pre-shifted to `granule`-sized keys.
fn probe_stream(granule: u64, footprint: u64) -> Vec<(u32, u64)> {
    let mut x = 0x2545_F491_4F6C_DD1Du64;
    let mut addr = 0u64;
    let mut out = Vec::with_capacity(PROBES);
    for i in 0..PROBES {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        match x >> 61 {
            // Repeat the previous granule (the dominant real pattern).
            0..=3 => {}
            // Step to the next granule (streaming).
            4 | 5 => addr = addr.wrapping_add(granule),
            // Jump somewhere in the hot footprint.
            _ => addr = (x >> 17) % footprint,
        }
        out.push(((i % BLOCK) as u32, addr));
    }
    out
}

fn bench_lru(c: &mut Criterion) {
    let mut group = c.benchmark_group("lru");
    let cache_stream = probe_stream(64, 1 << 20);
    let tlb_stream = probe_stream(4096, 16 << 20);

    group.bench_function("cache_32k_8w_scalar", |b| {
        b.iter(|| {
            let mut cache = Cache::new(CacheConfig::new(32 << 10, 8));
            for &(_, addr) in &cache_stream {
                cache.access(addr);
            }
            cache.misses()
        })
    });

    group.bench_function("cache_32k_8w_batched", |b| {
        b.iter(|| {
            let mut cache = Cache::new(CacheConfig::new(32 << 10, 8));
            let mut misses = Vec::with_capacity(BLOCK);
            let mut total = 0;
            for block in cache_stream.chunks(BLOCK) {
                misses.clear();
                cache.access_events(block, &mut misses);
                total += misses.len();
            }
            total
        })
    });

    group.bench_function("tlb_512_fa_scalar", |b| {
        b.iter(|| {
            let mut tlb = Tlb::new(TlbConfig::new(512, 512));
            for &(_, addr) in &tlb_stream {
                tlb.access(addr);
            }
            tlb.misses()
        })
    });

    group.bench_function("tlb_512_fa_batched", |b| {
        b.iter(|| {
            let mut tlb = Tlb::new(TlbConfig::new(512, 512));
            let mut misses = Vec::with_capacity(BLOCK);
            let mut total = 0;
            for block in tlb_stream.chunks(BLOCK) {
                misses.clear();
                tlb.access_events(block, &mut misses);
                total += misses.len();
            }
            total
        })
    });

    group.finish();
}

criterion_group!(benches, bench_lru);
criterion_main!(benches);
