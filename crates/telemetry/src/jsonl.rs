//! JSONL trace sink: one event per line, deterministic field order.
//!
//! Line order is fixed (meta, then spans by id, then counters, gauges,
//! histograms and phases in name order) and every map is emitted in a fixed key
//! order, so two traces of the same run shape differ only in ids, thread
//! ids and timings — `jq`-friendly and safely diffable.

use std::io::{self, Write};

use serde::Value;

use crate::recorder::FieldValue;
use crate::snapshot::TelemetrySnapshot;

/// Trace format version, bumped on any breaking field change.
///
/// v2 (additive over v1 — readers keying on field names keep working):
/// the meta line gains `run` (run id, 0 when unattributed) and
/// `experiment` (target name or `null`) so multi-run trace files are
/// attributable, and every span event gains a `run` label.
pub const TRACE_SCHEMA: u32 = 2;

fn num(v: impl ToString) -> Value {
    Value::Num(v.to_string())
}

fn field_value(v: &FieldValue) -> Value {
    match v {
        FieldValue::Bool(b) => Value::Bool(*b),
        FieldValue::U64(n) => num(n),
        FieldValue::I64(n) => num(n),
        FieldValue::F64(x) => num(x),
        FieldValue::Str(s) => Value::Str(s.clone()),
    }
}

fn write_event(out: &mut impl Write, event: Value) -> io::Result<()> {
    let line = serde_json::to_string(&event)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    writeln!(out, "{line}")
}

fn histogram_event(kind: &str, name: &str, h: &crate::Histogram) -> Value {
    let buckets: Vec<Value> = h
        .buckets()
        .filter(|&(_, count)| count > 0)
        .map(|(le, count)| Value::Seq(vec![num(le), num(count)]))
        .collect();
    Value::Map(vec![
        ("type".into(), Value::Str(kind.into())),
        ("name".into(), Value::Str(name.into())),
        ("count".into(), num(h.count())),
        ("sum".into(), num(h.sum())),
        ("min".into(), num(h.min())),
        ("max".into(), num(h.max())),
        ("buckets".into(), Value::Seq(buckets)),
        ("overflow".into(), num(h.overflow())),
    ])
}

/// Writes the snapshot as a JSONL trace with no run attribution in the
/// meta line (`run` 0, `experiment` null) — see [`write_trace_with_meta`]
/// for the attributed form used by `repro --trace-out`.
///
/// # Errors
///
/// Propagates I/O errors from `out`.
pub fn write_trace(snapshot: &TelemetrySnapshot, out: &mut impl Write) -> io::Result<()> {
    write_trace_with_meta(snapshot, 0, None, out)
}

/// Writes the snapshot as a JSONL trace.
///
/// Events, one JSON object per line:
/// * `{"type":"meta","schema":2,"run":…,"experiment":…,"dropped_spans":N}`
///   — always first; `run` is the producing run's id (0 when
///   unattributed), `experiment` the target name or `null`.
/// * `{"type":"span","id":…,"parent":…,"name":…,"thread":…,"run":…,
///   "start_ns":…,"dur_ns":…,"fields":{…}}` — one per retained span,
///   ascending id.
/// * `{"type":"counter","name":…,"value":…}` — one per counter.
/// * `{"type":"gauge","name":…,"value":…}` — one per gauge (current level).
/// * `{"type":"histogram"|"phase","name":…,"count":…,"sum":…,"min":…,
///   "max":…,"buckets":[[le,count],…],"overflow":…}` — explicit
///   histograms (labeled series as `family{key="value"}`), then
///   per-span-name wall-time aggregates.
///
/// # Errors
///
/// Propagates I/O errors from `out`.
pub fn write_trace_with_meta(
    snapshot: &TelemetrySnapshot,
    run: u64,
    experiment: Option<&str>,
    out: &mut impl Write,
) -> io::Result<()> {
    write_event(
        out,
        Value::Map(vec![
            ("type".into(), Value::Str("meta".into())),
            ("schema".into(), num(TRACE_SCHEMA)),
            ("run".into(), num(run)),
            (
                "experiment".into(),
                experiment.map_or(Value::Null, |e| Value::Str(e.into())),
            ),
            ("dropped_spans".into(), num(snapshot.dropped_spans)),
        ]),
    )?;

    let mut spans: Vec<_> = snapshot.spans.iter().collect();
    spans.sort_by_key(|s| s.id);
    for span in spans {
        let fields = Value::Map(
            span.fields
                .iter()
                .map(|(k, v)| ((*k).to_string(), field_value(v)))
                .collect(),
        );
        write_event(
            out,
            Value::Map(vec![
                ("type".into(), Value::Str("span".into())),
                ("id".into(), num(span.id)),
                ("parent".into(), span.parent.map_or(Value::Null, num)),
                ("name".into(), Value::Str(span.name.into())),
                ("thread".into(), num(span.thread)),
                ("run".into(), num(span.run)),
                ("start_ns".into(), num(span.start_nanos)),
                ("dur_ns".into(), num(span.duration_nanos)),
                ("fields".into(), fields),
            ]),
        )?;
    }

    for (name, value) in &snapshot.counters {
        write_event(
            out,
            Value::Map(vec![
                ("type".into(), Value::Str("counter".into())),
                ("name".into(), Value::Str((*name).into())),
                ("value".into(), num(value)),
            ]),
        )?;
    }
    for (name, value) in &snapshot.gauges {
        write_event(
            out,
            Value::Map(vec![
                ("type".into(), Value::Str("gauge".into())),
                ("name".into(), Value::Str((*name).into())),
                ("value".into(), num(value)),
            ]),
        )?;
    }
    for (name, h) in &snapshot.histograms {
        write_event(out, histogram_event("histogram", name, h))?;
    }
    for (&(family, key, value), h) in &snapshot.labeled_histograms {
        let series = format!("{family}{{{key}=\"{value}\"}}");
        write_event(out, histogram_event("histogram", &series, h))?;
    }
    for (name, h) in &snapshot.span_wall {
        write_event(out, histogram_event("phase", name, h))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;
    use std::sync::Arc;

    fn sample_trace() -> String {
        let r = Arc::new(Recorder::new());
        {
            let mut outer = r.span("campaign");
            outer.record("cells", 4u64);
            let mut job = r.span("job");
            job.record("workload", "605.mcf_s");
            job.record("cached", false);
        }
        r.counter_add("memo_hits", 2);
        r.gauge_add("active_runs", 1);
        r.histogram_record("queue_wait_ns", 1500);
        let mut buf = Vec::new();
        write_trace(&r.snapshot(), &mut buf).unwrap();
        String::from_utf8(buf).unwrap()
    }

    #[test]
    fn every_line_is_valid_json_with_a_type() {
        let text = sample_trace();
        assert!(text.lines().count() >= 6);
        for line in text.lines() {
            let v: Value = serde_json::from_str(line).unwrap();
            let t = v.field("type").unwrap();
            assert!(matches!(t, Value::Str(_)), "{line}");
        }
    }

    #[test]
    fn meta_line_comes_first_and_spans_carry_structure() {
        let text = sample_trace();
        let first: Value = serde_json::from_str(text.lines().next().unwrap()).unwrap();
        assert_eq!(first.field("type").unwrap(), &Value::Str("meta".into()));

        let job_line = text
            .lines()
            .find(|l| l.contains("\"job\""))
            .expect("job span present");
        let job: Value = serde_json::from_str(job_line).unwrap();
        assert!(matches!(job.field("parent").unwrap(), Value::Num(_)));
        let fields = job.field("fields").unwrap();
        assert_eq!(
            fields.field("workload").unwrap(),
            &Value::Str("605.mcf_s".into())
        );
        assert_eq!(fields.field("cached").unwrap(), &Value::Bool(false));
    }

    #[test]
    fn meta_carries_run_and_experiment_attribution() {
        let r = Arc::new(Recorder::new());
        let _scope = crate::RunScope::enter(12);
        {
            let _s = r.span("campaign");
        }
        let mut buf = Vec::new();
        write_trace_with_meta(&r.snapshot(), 12, Some("table5"), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let meta: Value = serde_json::from_str(text.lines().next().unwrap()).unwrap();
        assert_eq!(meta.field("schema").unwrap(), &num(TRACE_SCHEMA));
        assert_eq!(meta.field("run").unwrap(), &num(12u64));
        assert_eq!(
            meta.field("experiment").unwrap(),
            &Value::Str("table5".into())
        );
        let span_line = text.lines().find(|l| l.contains("\"campaign\"")).unwrap();
        let span: Value = serde_json::from_str(span_line).unwrap();
        assert_eq!(span.field("run").unwrap(), &num(12u64));

        // The unattributed wrapper stays valid: run 0, experiment null.
        let mut buf = Vec::new();
        write_trace(&r.snapshot(), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let meta: Value = serde_json::from_str(text.lines().next().unwrap()).unwrap();
        assert_eq!(meta.field("run").unwrap(), &num(0u64));
        assert_eq!(meta.field("experiment").unwrap(), &Value::Null);
    }

    #[test]
    fn labeled_histograms_appear_as_labeled_series_names() {
        let r = Arc::new(Recorder::new());
        r.histogram_record_labeled("serve.request_wall_ms", "route", "run", 3);
        let mut buf = Vec::new();
        write_trace(&r.snapshot(), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(
            text.contains("\"serve.request_wall_ms{route=\\\"run\\\"}\""),
            "{text}"
        );
    }

    #[test]
    fn counters_and_histograms_present() {
        let text = sample_trace();
        assert!(text.contains("\"counter\""));
        assert!(text.contains("\"memo_hits\""));
        assert!(text.contains("\"gauge\""));
        assert!(text.contains("\"active_runs\""));
        assert!(text.contains("\"histogram\""));
        assert!(text.contains("\"queue_wait_ns\""));
        assert!(text.contains("\"phase\""));
        // Field order inside span events is fixed.
        let span_line = text.lines().find(|l| l.contains("\"campaign\"")).unwrap();
        let id_pos = span_line.find("\"id\"").unwrap();
        let name_pos = span_line.find("\"name\"").unwrap();
        let dur_pos = span_line.find("\"dur_ns\"").unwrap();
        assert!(id_pos < name_pos && name_pos < dur_pos);
    }
}
