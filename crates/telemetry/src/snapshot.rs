//! In-memory snapshot of a recorder's state — the sink tests and the
//! `repro --stats` phase table query.

use std::collections::{BTreeMap, BTreeSet};

use crate::histogram::Histogram;
use crate::recorder::FieldValue;

/// One closed span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Recorder-unique id (allocation order, starting at 1).
    pub id: u64,
    /// Id of the enclosing span, if any.
    pub parent: Option<u64>,
    /// Static span name (dot-separated, e.g. `engine.job`).
    pub name: &'static str,
    /// Process-wide sequential id of the recording thread.
    pub thread: u64,
    /// Run label captured when the span opened
    /// ([`crate::current_run_id`]; 0 = outside any run scope).
    pub run: u64,
    /// Monotonic nanoseconds since the recorder's creation.
    pub start_nanos: u64,
    /// Span wall time in nanoseconds.
    pub duration_nanos: u64,
    /// Structured fields, in `record` order.
    pub fields: Vec<(&'static str, FieldValue)>,
}

impl SpanRecord {
    /// Looks a field up by key (first match).
    pub fn field(&self, key: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// A field's string value, if present and textual.
    pub fn field_str(&self, key: &str) -> Option<&str> {
        match self.field(key) {
            Some(FieldValue::Str(s)) => Some(s),
            _ => None,
        }
    }

    /// A field's unsigned value, if present and numeric.
    pub fn field_u64(&self, key: &str) -> Option<u64> {
        match self.field(key) {
            Some(FieldValue::U64(v)) => Some(*v),
            _ => None,
        }
    }
}

/// Wall-clock aggregate of one span name (a "phase").
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseStat {
    /// Span name.
    pub name: &'static str,
    /// Spans closed under this name.
    pub count: u64,
    /// Summed wall time in nanoseconds. Sums *per-span* wall time: nested
    /// and concurrent spans overlap, so totals across phases can exceed
    /// elapsed process time.
    pub total_nanos: u64,
    /// Mean wall time in nanoseconds.
    pub mean_nanos: f64,
    /// Median wall time (bucket upper bound; see
    /// [`Histogram::quantile_upper_bound`]).
    pub p50_nanos: u64,
    /// 90th-percentile wall time (bucket upper bound).
    pub p90_nanos: u64,
    /// 99th-percentile wall time (bucket upper bound).
    pub p99_nanos: u64,
}

/// A consistent copy of everything a [`crate::Recorder`] has collected.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetrySnapshot {
    /// Closed spans, in completion order (capped; see `dropped_spans`).
    pub spans: Vec<SpanRecord>,
    /// Spans discarded after the retention cap was hit.
    pub dropped_spans: u64,
    /// Named monotonic counters.
    pub counters: BTreeMap<&'static str, u64>,
    /// Named two-way gauges (current levels, e.g. in-flight runs).
    pub gauges: BTreeMap<&'static str, i64>,
    /// Named sample histograms.
    pub histograms: BTreeMap<&'static str, Histogram>,
    /// Per-span-name wall-time histograms (exact even past the span cap).
    pub span_wall: BTreeMap<&'static str, Histogram>,
    /// Histograms with one label dimension, keyed
    /// `(family, label key, label value)` — e.g. per-route request wall
    /// time in `repro serve`.
    pub labeled_histograms: BTreeMap<(&'static str, &'static str, &'static str), Histogram>,
    /// Wall-clock unix time (nanoseconds) of the recorder's monotonic
    /// epoch; `epoch_unix_nanos + start_nanos` re-anchors any span to an
    /// absolute timestamp (the OTLP exporter relies on this).
    pub epoch_unix_nanos: u64,
}

impl TelemetrySnapshot {
    /// A counter's value (0 when never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A gauge's current level (0 when never touched).
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// A histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All spans with the given name, in completion order.
    pub fn spans_named(&self, name: &str) -> Vec<&SpanRecord> {
        self.spans.iter().filter(|s| s.name == name).collect()
    }

    /// The set of distinct span names (from the wall-time aggregates, so
    /// complete even past the span cap).
    pub fn span_names(&self) -> BTreeSet<&'static str> {
        self.span_wall.keys().copied().collect()
    }

    /// Per-phase wall-clock aggregates, largest total first.
    pub fn phase_breakdown(&self) -> Vec<PhaseStat> {
        let mut phases: Vec<PhaseStat> = self
            .span_wall
            .iter()
            .map(|(&name, h)| PhaseStat {
                name,
                count: h.count(),
                total_nanos: h.sum(),
                mean_nanos: h.mean(),
                p50_nanos: h.quantile_upper_bound(0.50),
                p90_nanos: h.quantile_upper_bound(0.90),
                p99_nanos: h.quantile_upper_bound(0.99),
            })
            .collect();
        phases.sort_by(|a, b| b.total_nanos.cmp(&a.total_nanos).then(a.name.cmp(b.name)));
        phases
    }

    /// The `repro --stats` phase table: one row per span name, largest
    /// wall-clock total first.
    pub fn render_phase_table(&self) -> String {
        let phases = self.phase_breakdown();
        let mut out = String::from("per-phase wall clock (spans overlap across threads):\n");
        out.push_str(&format!(
            "  {:<24} {:>8} {:>12} {:>12} {:>10} {:>10} {:>10}\n",
            "phase", "count", "total", "mean", "p50", "p90", "p99"
        ));
        for p in &phases {
            out.push_str(&format!(
                "  {:<24} {:>8} {:>11.3}s {:>10.3}ms {:>8.3}ms {:>8.3}ms {:>8.3}ms\n",
                p.name,
                p.count,
                p.total_nanos as f64 / 1e9,
                p.mean_nanos / 1e6,
                p.p50_nanos as f64 / 1e6,
                p.p90_nanos as f64 / 1e6,
                p.p99_nanos as f64 / 1e6,
            ));
        }
        if self.dropped_spans > 0 {
            out.push_str(&format!(
                "  ({} span records dropped past the cap; totals above remain exact)\n",
                self.dropped_spans
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;
    use std::sync::Arc;

    fn snapshot_with_phases() -> TelemetrySnapshot {
        let r = Arc::new(Recorder::new());
        for _ in 0..3 {
            let mut s = r.span("alpha");
            s.record("workload", "mcf");
            s.record("n", 7u64);
        }
        {
            let _s = r.span("beta");
        }
        r.snapshot()
    }

    #[test]
    fn field_accessors() {
        let snap = snapshot_with_phases();
        let s = &snap.spans_named("alpha")[0];
        assert_eq!(s.field_str("workload"), Some("mcf"));
        assert_eq!(s.field_u64("n"), Some(7));
        assert_eq!(s.field("missing"), None);
        assert_eq!(s.field_u64("workload"), None);
    }

    #[test]
    fn phase_breakdown_sorted_and_complete() {
        let snap = snapshot_with_phases();
        let phases = snap.phase_breakdown();
        assert_eq!(phases.len(), 2);
        let alpha = phases.iter().find(|p| p.name == "alpha").unwrap();
        assert_eq!(alpha.count, 3);
        assert!(phases[0].total_nanos >= phases[1].total_nanos);
        assert_eq!(
            snap.span_names().into_iter().collect::<Vec<_>>(),
            vec!["alpha", "beta"]
        );
    }

    #[test]
    fn phase_table_renders_every_phase() {
        let snap = snapshot_with_phases();
        let table = snap.render_phase_table();
        assert!(table.contains("alpha"));
        assert!(table.contains("beta"));
        assert!(table.contains("phase"));
        assert!(!table.contains("dropped"));
    }

    #[test]
    fn phase_quantiles_are_ordered_and_bound_samples() {
        let snap = snapshot_with_phases();
        for p in snap.phase_breakdown() {
            assert!(p.p50_nanos <= p.p90_nanos, "{}", p.name);
            assert!(p.p90_nanos <= p.p99_nanos, "{}", p.name);
            let h = snap.span_wall.get(p.name).unwrap();
            assert_eq!(p.p99_nanos, h.quantile_upper_bound(0.99));
        }
        let table = snap.render_phase_table();
        for col in ["p50", "p90", "p99"] {
            assert!(table.contains(col), "missing {col} column:\n{table}");
        }
    }
}
