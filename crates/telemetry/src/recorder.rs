//! The thread-safe recorder and its span guards.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::histogram::Histogram;
use crate::snapshot::{SpanRecord, TelemetrySnapshot};

/// A structured field value attached to a span.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Boolean flag.
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// Text.
    Str(String),
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}
impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(u64::from(v))
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// Default cap on retained span records (counters and histograms are never
/// capped). A full-scale `repro all` emits a few tens of thousands of
/// spans; the cap exists so pathological loops (e.g. a Criterion bench
/// iterating a recorded call millions of times) bound memory. Dropped
/// spans are counted, never silent.
pub const DEFAULT_SPAN_CAPACITY: usize = 262_144;

#[derive(Debug, Default)]
struct State {
    spans: Vec<SpanRecord>,
    dropped_spans: u64,
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, i64>,
    histograms: BTreeMap<&'static str, Histogram>,
    /// Wall-time histogram per span name; fed on every span close, so
    /// phase totals stay exact even past the span cap.
    span_wall: BTreeMap<&'static str, Histogram>,
}

/// Collects spans, counters and histograms from any number of threads.
#[derive(Debug)]
pub struct Recorder {
    /// Distinguishes recorders on the thread-local parent stack, so a span
    /// of one recorder never becomes the parent of another recorder's span.
    tag: u64,
    enabled: bool,
    span_capacity: usize,
    epoch: Instant,
    next_id: AtomicU64,
    state: Mutex<State>,
}

static NEXT_TAG: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Stack of `(recorder tag, span id)` for implicit parenting.
    static SPAN_STACK: RefCell<Vec<(u64, u64)>> = const { RefCell::new(Vec::new()) };
    static THREAD_ID: RefCell<Option<u64>> = const { RefCell::new(None) };
}

fn current_thread_id() -> u64 {
    THREAD_ID.with(|cell| {
        let mut id = cell.borrow_mut();
        *id.get_or_insert_with(|| NEXT_THREAD.fetch_add(1, Ordering::Relaxed))
    })
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new()
    }
}

impl Recorder {
    /// An enabled recorder with the default span cap.
    pub fn new() -> Self {
        Recorder {
            tag: NEXT_TAG.fetch_add(1, Ordering::Relaxed),
            enabled: true,
            span_capacity: DEFAULT_SPAN_CAPACITY,
            epoch: Instant::now(),
            next_id: AtomicU64::new(1),
            state: Mutex::new(State::default()),
        }
    }

    /// A recorder that ignores everything — for measuring instrumentation
    /// overhead and for components that must run dark.
    pub fn disabled() -> Self {
        Recorder {
            enabled: false,
            ..Recorder::new()
        }
    }

    /// Overrides the retained-span cap (counters/histograms are unaffected).
    #[must_use]
    pub fn with_span_capacity(mut self, capacity: usize) -> Self {
        self.span_capacity = capacity;
        self
    }

    /// True unless constructed with [`Recorder::disabled`].
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Opens a span. The guard records the span when dropped; its parent is
    /// the innermost open span *of this recorder* on the current thread
    /// (override with [`Span::set_parent`] for cross-thread work).
    pub fn span(self: &Arc<Self>, name: &'static str) -> Span {
        if !self.enabled {
            return Span::noop();
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let parent = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let parent = stack
                .iter()
                .rev()
                .find(|&&(tag, _)| tag == self.tag)
                .map(|&(_, id)| id);
            stack.push((self.tag, id));
            parent
        });
        Span {
            inner: Some(ActiveSpan {
                recorder: Arc::clone(self),
                id,
                parent,
                name,
                start: Instant::now(),
                start_nanos: self.epoch.elapsed().as_nanos() as u64,
                fields: Vec::new(),
            }),
        }
    }

    /// Adds `delta` to a named counter.
    pub fn counter_add(&self, name: &'static str, delta: u64) {
        if !self.enabled {
            return;
        }
        let mut state = self.state.lock().expect("telemetry state");
        *state.counters.entry(name).or_insert(0) += delta;
    }

    /// Adds `delta` (possibly negative) to a named gauge. Unlike counters,
    /// gauges track *current* levels — in-flight runs, queue depth — and
    /// move both ways.
    pub fn gauge_add(&self, name: &'static str, delta: i64) {
        if !self.enabled {
            return;
        }
        let mut state = self.state.lock().expect("telemetry state");
        *state.gauges.entry(name).or_insert(0) += delta;
    }

    /// Sets a named gauge to an absolute level.
    pub fn gauge_set(&self, name: &'static str, value: i64) {
        if !self.enabled {
            return;
        }
        let mut state = self.state.lock().expect("telemetry state");
        state.gauges.insert(name, value);
    }

    /// Current level of one named gauge (0 when never touched); as cheap
    /// as [`Recorder::counter_value`].
    pub fn gauge_value(&self, name: &str) -> i64 {
        self.state
            .lock()
            .expect("telemetry state")
            .gauges
            .get(name)
            .copied()
            .unwrap_or(0)
    }

    /// Records one sample into a named histogram.
    pub fn histogram_record(&self, name: &'static str, value: u64) {
        if !self.enabled {
            return;
        }
        let mut state = self.state.lock().expect("telemetry state");
        state.histograms.entry(name).or_default().record(value);
    }

    /// Current value of one named counter (0 when never touched) without
    /// paying for a full [`Recorder::snapshot`] clone — cheap enough to
    /// call per request on a serving path.
    pub fn counter_value(&self, name: &str) -> u64 {
        self.state
            .lock()
            .expect("telemetry state")
            .counters
            .get(name)
            .copied()
            .unwrap_or(0)
    }

    /// A consistent copy of everything recorded so far.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let state = self.state.lock().expect("telemetry state");
        TelemetrySnapshot {
            spans: state.spans.clone(),
            dropped_spans: state.dropped_spans,
            counters: state.counters.clone(),
            gauges: state.gauges.clone(),
            histograms: state.histograms.clone(),
            span_wall: state.span_wall.clone(),
        }
    }

    /// Clears all recorded data (spans, counters, histograms).
    pub fn reset(&self) {
        *self.state.lock().expect("telemetry state") = State::default();
    }

    /// Renders the live state in Prometheus text exposition format — a
    /// snapshot taken and serialized in one call, for scrape-style readers
    /// such as the `repro serve` `/metrics` endpoint.
    pub fn prometheus_text(&self) -> String {
        let mut buf = Vec::new();
        crate::write_prometheus(&self.snapshot(), &mut buf).expect("writing to memory");
        String::from_utf8(buf).expect("exposition text is UTF-8")
    }

    fn close_span(&self, span: &mut ActiveSpan) {
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            if let Some(pos) = stack
                .iter()
                .rposition(|&entry| entry == (self.tag, span.id))
            {
                stack.remove(pos);
            }
        });
        let duration_nanos = span.start.elapsed().as_nanos() as u64;
        let record = SpanRecord {
            id: span.id,
            parent: span.parent,
            name: span.name,
            thread: current_thread_id(),
            start_nanos: span.start_nanos,
            duration_nanos,
            fields: std::mem::take(&mut span.fields),
        };
        let mut state = self.state.lock().expect("telemetry state");
        state
            .span_wall
            .entry(span.name)
            .or_default()
            .record(duration_nanos);
        if state.spans.len() < self.span_capacity {
            state.spans.push(record);
        } else {
            state.dropped_spans += 1;
        }
    }
}

#[derive(Debug)]
struct ActiveSpan {
    recorder: Arc<Recorder>,
    id: u64,
    parent: Option<u64>,
    name: &'static str,
    start: Instant,
    start_nanos: u64,
    fields: Vec<(&'static str, FieldValue)>,
}

/// An open span; recorded into its [`Recorder`] on drop. A no-op guard
/// (from a disabled or missing recorder) costs nothing to hold.
#[derive(Debug)]
pub struct Span {
    inner: Option<ActiveSpan>,
}

impl Span {
    /// A guard that records nothing.
    pub fn noop() -> Span {
        Span { inner: None }
    }

    /// The span id, for explicit cross-thread parenting (`None` for no-op
    /// guards).
    pub fn id(&self) -> Option<u64> {
        self.inner.as_ref().map(|s| s.id)
    }

    /// Attaches a structured field, recorded when the span closes.
    pub fn record(&mut self, key: &'static str, value: impl Into<FieldValue>) {
        if let Some(span) = self.inner.as_mut() {
            span.fields.push((key, value.into()));
        }
    }

    /// Overrides the implicit (thread-local) parent — used when a span
    /// belongs under work that started on another thread.
    pub fn set_parent(&mut self, parent: Option<u64>) {
        if let Some(span) = self.inner.as_mut() {
            span.parent = parent;
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(mut span) = self.inner.take() {
            let recorder = Arc::clone(&span.recorder);
            recorder.close_span(&mut span);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_on_one_thread() {
        let r = Arc::new(Recorder::new());
        {
            let outer = r.span("outer");
            let outer_id = outer.id().unwrap();
            {
                let mut mid = r.span("mid");
                assert_eq!(
                    mid.inner.as_ref().unwrap().parent,
                    Some(outer_id),
                    "implicit parent is the innermost open span"
                );
                mid.record("k", 7u64);
                let _leaf = r.span("leaf");
            }
            let _sibling = r.span("sibling");
        }
        let snap = r.snapshot();
        assert_eq!(snap.spans.len(), 4);
        let outer = &snap.spans_named("outer")[0];
        assert_eq!(outer.parent, None);
        let mid = &snap.spans_named("mid")[0];
        let leaf = &snap.spans_named("leaf")[0];
        let sibling = &snap.spans_named("sibling")[0];
        assert_eq!(mid.parent, Some(outer.id));
        assert_eq!(leaf.parent, Some(mid.id));
        assert_eq!(sibling.parent, Some(outer.id));
        assert_eq!(mid.fields, vec![("k", FieldValue::U64(7))]);
    }

    #[test]
    fn two_recorders_never_cross_parent() {
        let a = Arc::new(Recorder::new());
        let b = Arc::new(Recorder::new());
        {
            let _on_a = a.span("a.outer");
            let on_b = b.span("b.span");
            assert_eq!(on_b.inner.as_ref().unwrap().parent, None);
        }
        assert_eq!(b.snapshot().spans_named("b.span")[0].parent, None);
    }

    #[test]
    fn explicit_parent_crosses_threads() {
        let r = Arc::new(Recorder::new());
        let outer = r.span("campaign");
        let outer_id = outer.id().unwrap();
        let worker = Arc::clone(&r);
        std::thread::spawn(move || {
            let mut job = worker.span("job");
            job.set_parent(Some(outer_id));
        })
        .join()
        .unwrap();
        drop(outer);
        let snap = r.snapshot();
        let job = &snap.spans_named("job")[0];
        let campaign = &snap.spans_named("campaign")[0];
        assert_eq!(job.parent, Some(campaign.id));
        assert_ne!(job.thread, campaign.thread);
    }

    #[test]
    fn span_cap_counts_drops_and_keeps_wall_histograms() {
        let r = Arc::new(Recorder::new().with_span_capacity(2));
        for _ in 0..5 {
            let _s = r.span("phase");
        }
        let snap = r.snapshot();
        assert_eq!(snap.spans.len(), 2);
        assert_eq!(snap.dropped_spans, 3);
        assert_eq!(snap.span_wall.get("phase").unwrap().count(), 5);
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let r = Arc::new(Recorder::disabled());
        {
            let mut s = r.span("x");
            assert_eq!(s.id(), None);
            s.record("k", 1u64);
        }
        r.counter_add("c", 1);
        r.histogram_record("h", 1);
        let snap = r.snapshot();
        assert!(snap.spans.is_empty());
        assert!(snap.counters.is_empty());
        assert!(snap.histograms.is_empty());
    }

    #[test]
    fn prometheus_text_renders_live_state() {
        let r = Arc::new(Recorder::new());
        r.counter_add("serve.requests", 3);
        let first = r.prometheus_text();
        assert!(first.contains("horizon_serve_requests 3"), "{first}");
        r.counter_add("serve.requests", 1);
        let second = r.prometheus_text();
        assert!(second.contains("horizon_serve_requests 4"), "{second}");
    }

    #[test]
    fn gauges_move_both_ways_and_reset_clears() {
        let r = Arc::new(Recorder::new());
        r.gauge_add("g", 3);
        r.gauge_add("g", -2);
        assert_eq!(r.gauge_value("g"), 1);
        r.gauge_set("g", 7);
        assert_eq!(r.gauge_value("g"), 7);
        assert_eq!(r.snapshot().gauge("g"), 7);
        assert_eq!(r.gauge_value("untouched"), 0);
        r.reset();
        assert_eq!(r.gauge_value("g"), 0);
    }

    #[test]
    fn disabled_recorder_ignores_gauges() {
        let r = Arc::new(Recorder::disabled());
        r.gauge_add("g", 5);
        r.gauge_set("g", 9);
        assert!(r.snapshot().gauges.is_empty());
    }

    #[test]
    fn counters_accumulate_and_reset_clears() {
        let r = Arc::new(Recorder::new());
        r.counter_add("c", 2);
        r.counter_add("c", 3);
        assert_eq!(r.snapshot().counter("c"), 5);
        r.reset();
        let snap = r.snapshot();
        assert_eq!(snap.counter("c"), 0);
        assert!(snap.spans.is_empty());
    }
}
