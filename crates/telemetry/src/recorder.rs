//! The thread-safe recorder and its span guards.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use crate::bus::{current_run_id, EventBus, EventKind};
use crate::histogram::Histogram;
use crate::snapshot::{SpanRecord, TelemetrySnapshot};

/// Counter name under which bus ring-overflow drops surface in snapshots,
/// [`Recorder::counter_value`] and `/metrics`. It is synthesized from the
/// bus's own atomic — publishing it through `counter_add` would recurse
/// (the add would itself emit a bus event).
pub const EVENTS_DROPPED_COUNTER: &str = "telemetry.events_dropped";

/// A structured field value attached to a span.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Boolean flag.
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// Text.
    Str(String),
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}
impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(u64::from(v))
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// Default cap on retained span records (counters and histograms are never
/// capped). A full-scale `repro all` emits a few tens of thousands of
/// spans; the cap exists so pathological loops (e.g. a Criterion bench
/// iterating a recorded call millions of times) bound memory. Dropped
/// spans are counted, never silent.
pub const DEFAULT_SPAN_CAPACITY: usize = 262_144;

#[derive(Debug, Default)]
struct State {
    spans: Vec<SpanRecord>,
    dropped_spans: u64,
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, i64>,
    histograms: BTreeMap<&'static str, Histogram>,
    /// Wall-time histogram per span name; fed on every span close, so
    /// phase totals stay exact even past the span cap.
    span_wall: BTreeMap<&'static str, Histogram>,
    /// Histograms keyed `(family, label key, label value)` — one labelled
    /// dimension (e.g. `serve.request_wall_ms{route="run"}`), enough for
    /// per-route latency without a full label-set model.
    labeled_histograms: BTreeMap<(&'static str, &'static str, &'static str), Histogram>,
}

/// Collects spans, counters and histograms from any number of threads.
#[derive(Debug)]
pub struct Recorder {
    /// Distinguishes recorders on the thread-local parent stack, so a span
    /// of one recorder never becomes the parent of another recorder's span.
    tag: u64,
    enabled: bool,
    span_capacity: usize,
    epoch: Instant,
    /// Wall-clock time of `epoch` (unix nanoseconds), captured once at
    /// construction so monotonic span offsets can be re-anchored to
    /// absolute timestamps (the OTLP exporter needs them).
    epoch_unix_nanos: u64,
    next_id: AtomicU64,
    state: Mutex<State>,
    bus: EventBus,
}

static NEXT_TAG: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Stack of `(recorder tag, span id)` for implicit parenting.
    static SPAN_STACK: RefCell<Vec<(u64, u64)>> = const { RefCell::new(Vec::new()) };
    static THREAD_ID: RefCell<Option<u64>> = const { RefCell::new(None) };
}

fn current_thread_id() -> u64 {
    THREAD_ID.with(|cell| {
        let mut id = cell.borrow_mut();
        *id.get_or_insert_with(|| NEXT_THREAD.fetch_add(1, Ordering::Relaxed))
    })
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new()
    }
}

impl Recorder {
    /// An enabled recorder with the default span cap.
    pub fn new() -> Self {
        Recorder {
            tag: NEXT_TAG.fetch_add(1, Ordering::Relaxed),
            enabled: true,
            span_capacity: DEFAULT_SPAN_CAPACITY,
            epoch: Instant::now(),
            epoch_unix_nanos: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_nanos() as u64)
                .unwrap_or(0),
            next_id: AtomicU64::new(1),
            state: Mutex::new(State::default()),
            bus: EventBus::new(),
        }
    }

    /// A recorder that ignores everything — for measuring instrumentation
    /// overhead and for components that must run dark.
    pub fn disabled() -> Self {
        Recorder {
            enabled: false,
            ..Recorder::new()
        }
    }

    /// Overrides the retained-span cap (counters/histograms are unaffected).
    #[must_use]
    pub fn with_span_capacity(mut self, capacity: usize) -> Self {
        self.span_capacity = capacity;
        self
    }

    /// True unless constructed with [`Recorder::disabled`].
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Opens a span. The guard records the span when dropped; its parent is
    /// the innermost open span *of this recorder* on the current thread
    /// (override with [`Span::set_parent`] for cross-thread work).
    pub fn span(self: &Arc<Self>, name: &'static str) -> Span {
        self.open_span(name, false)
    }

    /// Opens a *phase* span: identical to [`Recorder::span`], but its open
    /// and close additionally publish `phase_enter`/`phase_exit` events on
    /// the live bus, so streaming consumers see pipeline transitions
    /// without wading through every leaf span.
    pub fn phase_span(self: &Arc<Self>, name: &'static str) -> Span {
        self.open_span(name, true)
    }

    fn open_span(self: &Arc<Self>, name: &'static str, phase: bool) -> Span {
        if !self.enabled {
            return Span::noop();
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let parent = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let parent = stack
                .iter()
                .rev()
                .find(|&&(tag, _)| tag == self.tag)
                .map(|&(_, id)| id);
            stack.push((self.tag, id));
            parent
        });
        let run = current_run_id();
        let start_nanos = self.epoch.elapsed().as_nanos() as u64;
        if self.bus.has_subscribers() {
            self.bus
                .publish(run, start_nanos, EventKind::SpanStart { id, parent, name });
            if phase {
                self.bus
                    .publish(run, start_nanos, EventKind::PhaseEnter { name });
            }
        }
        Span {
            inner: Some(ActiveSpan {
                recorder: Arc::clone(self),
                id,
                parent,
                name,
                run,
                phase,
                start: Instant::now(),
                start_nanos,
                fields: Vec::new(),
            }),
        }
    }

    /// The live event bus this recorder publishes into. Subscribe to watch
    /// spans, counters, phases and progress as they happen.
    pub fn bus(&self) -> &EventBus {
        &self.bus
    }

    /// Publishes one job-progress event on the bus (no-op when disabled or
    /// unobserved — costs one atomic load on the engine's per-job path).
    pub fn publish_progress(&self, completed: u64, total: u64, cached: bool) {
        if !self.enabled || !self.bus.has_subscribers() {
            return;
        }
        self.bus.publish(
            current_run_id(),
            self.epoch.elapsed().as_nanos() as u64,
            EventKind::Progress {
                completed,
                total,
                cached,
            },
        );
    }

    /// Adds `delta` to a named counter. With a bus subscriber attached, a
    /// `counter` event carrying the delta and post-add total is published
    /// (outside the state lock).
    pub fn counter_add(&self, name: &'static str, delta: u64) {
        if !self.enabled {
            return;
        }
        let mut state = self.state.lock().expect("telemetry state");
        let slot = state.counters.entry(name).or_insert(0);
        *slot += delta;
        let total = *slot;
        drop(state);
        if self.bus.has_subscribers() {
            self.bus.publish(
                current_run_id(),
                self.epoch.elapsed().as_nanos() as u64,
                EventKind::CounterDelta { name, delta, total },
            );
        }
    }

    /// Adds `delta` (possibly negative) to a named gauge. Unlike counters,
    /// gauges track *current* levels — in-flight runs, queue depth — and
    /// move both ways.
    pub fn gauge_add(&self, name: &'static str, delta: i64) {
        if !self.enabled {
            return;
        }
        let mut state = self.state.lock().expect("telemetry state");
        *state.gauges.entry(name).or_insert(0) += delta;
    }

    /// Sets a named gauge to an absolute level.
    pub fn gauge_set(&self, name: &'static str, value: i64) {
        if !self.enabled {
            return;
        }
        let mut state = self.state.lock().expect("telemetry state");
        state.gauges.insert(name, value);
    }

    /// Current level of one named gauge (0 when never touched); as cheap
    /// as [`Recorder::counter_value`].
    pub fn gauge_value(&self, name: &str) -> i64 {
        self.state
            .lock()
            .expect("telemetry state")
            .gauges
            .get(name)
            .copied()
            .unwrap_or(0)
    }

    /// Records one sample into a named histogram.
    pub fn histogram_record(&self, name: &'static str, value: u64) {
        if !self.enabled {
            return;
        }
        let mut state = self.state.lock().expect("telemetry state");
        state.histograms.entry(name).or_default().record(value);
    }

    /// Records one sample into a histogram carrying a single static label
    /// dimension, e.g. `serve.request_wall_ms{route="run"}`. All three
    /// parts are `&'static str` so the hot path never allocates.
    pub fn histogram_record_labeled(
        &self,
        family: &'static str,
        label_key: &'static str,
        label_value: &'static str,
        value: u64,
    ) {
        if !self.enabled {
            return;
        }
        let mut state = self.state.lock().expect("telemetry state");
        state
            .labeled_histograms
            .entry((family, label_key, label_value))
            .or_default()
            .record(value);
    }

    /// Current value of one named counter (0 when never touched) without
    /// paying for a full [`Recorder::snapshot`] clone — cheap enough to
    /// call per request on a serving path.
    pub fn counter_value(&self, name: &str) -> u64 {
        if name == EVENTS_DROPPED_COUNTER {
            return self.bus.dropped();
        }
        self.state
            .lock()
            .expect("telemetry state")
            .counters
            .get(name)
            .copied()
            .unwrap_or(0)
    }

    /// A consistent copy of everything recorded so far. Bus ring-overflow
    /// drops, if any, appear as the [`EVENTS_DROPPED_COUNTER`] counter.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let state = self.state.lock().expect("telemetry state");
        let mut counters = state.counters.clone();
        let events_dropped = self.bus.dropped();
        if events_dropped > 0 {
            counters.insert(EVENTS_DROPPED_COUNTER, events_dropped);
        }
        TelemetrySnapshot {
            spans: state.spans.clone(),
            dropped_spans: state.dropped_spans,
            counters,
            gauges: state.gauges.clone(),
            histograms: state.histograms.clone(),
            span_wall: state.span_wall.clone(),
            labeled_histograms: state.labeled_histograms.clone(),
            epoch_unix_nanos: self.epoch_unix_nanos,
        }
    }

    /// Clears all recorded data (spans, counters, histograms, and the
    /// events-dropped tally; live bus subscriptions stay attached).
    pub fn reset(&self) {
        *self.state.lock().expect("telemetry state") = State::default();
        self.bus.reset_dropped();
    }

    /// Renders the live state in Prometheus text exposition format — a
    /// snapshot taken and serialized in one call, for scrape-style readers
    /// such as the `repro serve` `/metrics` endpoint.
    pub fn prometheus_text(&self) -> String {
        let mut buf = Vec::new();
        crate::write_prometheus(&self.snapshot(), &mut buf).expect("writing to memory");
        String::from_utf8(buf).expect("exposition text is UTF-8")
    }

    fn close_span(&self, span: &mut ActiveSpan) {
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            if let Some(pos) = stack
                .iter()
                .rposition(|&entry| entry == (self.tag, span.id))
            {
                stack.remove(pos);
            }
        });
        let duration_nanos = span.start.elapsed().as_nanos() as u64;
        let record = SpanRecord {
            id: span.id,
            parent: span.parent,
            name: span.name,
            thread: current_thread_id(),
            run: span.run,
            start_nanos: span.start_nanos,
            duration_nanos,
            fields: std::mem::take(&mut span.fields),
        };
        {
            let mut state = self.state.lock().expect("telemetry state");
            state
                .span_wall
                .entry(span.name)
                .or_default()
                .record(duration_nanos);
            if state.spans.len() < self.span_capacity {
                state.spans.push(record);
            } else {
                state.dropped_spans += 1;
            }
        }
        if self.bus.has_subscribers() {
            let at_nanos = self.epoch.elapsed().as_nanos() as u64;
            self.bus.publish(
                span.run,
                at_nanos,
                EventKind::SpanEnd {
                    id: span.id,
                    name: span.name,
                    duration_nanos,
                },
            );
            if span.phase {
                self.bus.publish(
                    span.run,
                    at_nanos,
                    EventKind::PhaseExit {
                        name: span.name,
                        duration_nanos,
                    },
                );
            }
        }
    }
}

#[derive(Debug)]
struct ActiveSpan {
    recorder: Arc<Recorder>,
    id: u64,
    parent: Option<u64>,
    name: &'static str,
    /// Run label captured at open ([`current_run_id`]).
    run: u64,
    /// Phase spans publish `phase_enter`/`phase_exit` bus events.
    phase: bool,
    start: Instant,
    start_nanos: u64,
    fields: Vec<(&'static str, FieldValue)>,
}

/// An open span; recorded into its [`Recorder`] on drop. A no-op guard
/// (from a disabled or missing recorder) costs nothing to hold.
#[derive(Debug)]
pub struct Span {
    inner: Option<ActiveSpan>,
}

impl Span {
    /// A guard that records nothing.
    pub fn noop() -> Span {
        Span { inner: None }
    }

    /// The span id, for explicit cross-thread parenting (`None` for no-op
    /// guards).
    pub fn id(&self) -> Option<u64> {
        self.inner.as_ref().map(|s| s.id)
    }

    /// Attaches a structured field, recorded when the span closes.
    pub fn record(&mut self, key: &'static str, value: impl Into<FieldValue>) {
        if let Some(span) = self.inner.as_mut() {
            span.fields.push((key, value.into()));
        }
    }

    /// Overrides the implicit (thread-local) parent — used when a span
    /// belongs under work that started on another thread.
    pub fn set_parent(&mut self, parent: Option<u64>) {
        if let Some(span) = self.inner.as_mut() {
            span.parent = parent;
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(mut span) = self.inner.take() {
            let recorder = Arc::clone(&span.recorder);
            recorder.close_span(&mut span);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_on_one_thread() {
        let r = Arc::new(Recorder::new());
        {
            let outer = r.span("outer");
            let outer_id = outer.id().unwrap();
            {
                let mut mid = r.span("mid");
                assert_eq!(
                    mid.inner.as_ref().unwrap().parent,
                    Some(outer_id),
                    "implicit parent is the innermost open span"
                );
                mid.record("k", 7u64);
                let _leaf = r.span("leaf");
            }
            let _sibling = r.span("sibling");
        }
        let snap = r.snapshot();
        assert_eq!(snap.spans.len(), 4);
        let outer = &snap.spans_named("outer")[0];
        assert_eq!(outer.parent, None);
        let mid = &snap.spans_named("mid")[0];
        let leaf = &snap.spans_named("leaf")[0];
        let sibling = &snap.spans_named("sibling")[0];
        assert_eq!(mid.parent, Some(outer.id));
        assert_eq!(leaf.parent, Some(mid.id));
        assert_eq!(sibling.parent, Some(outer.id));
        assert_eq!(mid.fields, vec![("k", FieldValue::U64(7))]);
    }

    #[test]
    fn two_recorders_never_cross_parent() {
        let a = Arc::new(Recorder::new());
        let b = Arc::new(Recorder::new());
        {
            let _on_a = a.span("a.outer");
            let on_b = b.span("b.span");
            assert_eq!(on_b.inner.as_ref().unwrap().parent, None);
        }
        assert_eq!(b.snapshot().spans_named("b.span")[0].parent, None);
    }

    #[test]
    fn explicit_parent_crosses_threads() {
        let r = Arc::new(Recorder::new());
        let outer = r.span("campaign");
        let outer_id = outer.id().unwrap();
        let worker = Arc::clone(&r);
        std::thread::spawn(move || {
            let mut job = worker.span("job");
            job.set_parent(Some(outer_id));
        })
        .join()
        .unwrap();
        drop(outer);
        let snap = r.snapshot();
        let job = &snap.spans_named("job")[0];
        let campaign = &snap.spans_named("campaign")[0];
        assert_eq!(job.parent, Some(campaign.id));
        assert_ne!(job.thread, campaign.thread);
    }

    #[test]
    fn span_cap_counts_drops_and_keeps_wall_histograms() {
        let r = Arc::new(Recorder::new().with_span_capacity(2));
        for _ in 0..5 {
            let _s = r.span("phase");
        }
        let snap = r.snapshot();
        assert_eq!(snap.spans.len(), 2);
        assert_eq!(snap.dropped_spans, 3);
        assert_eq!(snap.span_wall.get("phase").unwrap().count(), 5);
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let r = Arc::new(Recorder::disabled());
        {
            let mut s = r.span("x");
            assert_eq!(s.id(), None);
            s.record("k", 1u64);
        }
        r.counter_add("c", 1);
        r.histogram_record("h", 1);
        let snap = r.snapshot();
        assert!(snap.spans.is_empty());
        assert!(snap.counters.is_empty());
        assert!(snap.histograms.is_empty());
    }

    #[test]
    fn prometheus_text_renders_live_state() {
        let r = Arc::new(Recorder::new());
        r.counter_add("serve.requests", 3);
        let first = r.prometheus_text();
        assert!(first.contains("horizon_serve_requests 3"), "{first}");
        r.counter_add("serve.requests", 1);
        let second = r.prometheus_text();
        assert!(second.contains("horizon_serve_requests 4"), "{second}");
    }

    #[test]
    fn gauges_move_both_ways_and_reset_clears() {
        let r = Arc::new(Recorder::new());
        r.gauge_add("g", 3);
        r.gauge_add("g", -2);
        assert_eq!(r.gauge_value("g"), 1);
        r.gauge_set("g", 7);
        assert_eq!(r.gauge_value("g"), 7);
        assert_eq!(r.snapshot().gauge("g"), 7);
        assert_eq!(r.gauge_value("untouched"), 0);
        r.reset();
        assert_eq!(r.gauge_value("g"), 0);
    }

    #[test]
    fn disabled_recorder_ignores_gauges() {
        let r = Arc::new(Recorder::disabled());
        r.gauge_add("g", 5);
        r.gauge_set("g", 9);
        assert!(r.snapshot().gauges.is_empty());
    }

    #[test]
    fn bus_sees_span_counter_and_phase_events_with_run_labels() {
        use crate::bus::{EventKind, RunScope};
        let r = Arc::new(Recorder::new());
        let sub = r.bus().subscribe(64);
        let _scope = RunScope::enter(41);
        {
            let _phase = r.phase_span("engine.simulate");
            r.counter_add("engine.memo_hits", 2);
            r.counter_add("engine.memo_hits", 3);
            r.publish_progress(1, 8, true);
        }
        let events: Vec<_> = std::iter::from_fn(|| sub.try_recv()).collect();
        let labels: Vec<&str> = events.iter().map(|e| e.kind.label()).collect();
        assert_eq!(
            labels,
            vec![
                "span_start",
                "phase_enter",
                "counter",
                "counter",
                "progress",
                "span_end",
                "phase_exit"
            ]
        );
        assert!(
            events.iter().all(|e| e.run == 41),
            "run label on all events"
        );
        let mut last = 0;
        for e in &events {
            assert!(e.seq > last, "monotonic seq");
            last = e.seq;
        }
        match &events[3].kind {
            EventKind::CounterDelta { name, delta, total } => {
                assert_eq!(*name, "engine.memo_hits");
                assert_eq!(*delta, 3);
                assert_eq!(*total, 5, "second delta carries the running total");
            }
            other => panic!("expected counter event, got {other:?}"),
        }
        // The span record itself is stamped with the run too.
        let snap = r.snapshot();
        assert_eq!(snap.spans_named("engine.simulate")[0].run, 41);
    }

    #[test]
    fn unobserved_recorder_publishes_nothing_and_disabled_stays_dark() {
        let r = Arc::new(Recorder::new());
        {
            let _s = r.phase_span("p");
            r.counter_add("c", 1);
            r.publish_progress(1, 2, false);
        }
        // Subscribe only now: nothing from before may appear.
        let sub = r.bus().subscribe(8);
        assert!(sub.try_recv().is_none());

        let dark = Arc::new(Recorder::disabled());
        let dark_sub = dark.bus().subscribe(8);
        {
            let _s = dark.phase_span("p");
            dark.counter_add("c", 1);
            dark.publish_progress(1, 2, false);
        }
        assert!(dark_sub.try_recv().is_none(), "disabled recorder runs dark");
    }

    #[test]
    fn ring_overflow_surfaces_as_events_dropped_counter() {
        let r = Arc::new(Recorder::new());
        let sub = r.bus().subscribe(2);
        for _ in 0..10 {
            r.counter_add("c", 1);
        }
        assert_eq!(sub.dropped(), 8);
        assert_eq!(r.counter_value(EVENTS_DROPPED_COUNTER), 8);
        assert_eq!(r.snapshot().counter(EVENTS_DROPPED_COUNTER), 8);
        r.reset();
        assert_eq!(r.counter_value(EVENTS_DROPPED_COUNTER), 0);
        assert_eq!(r.snapshot().counter(EVENTS_DROPPED_COUNTER), 0);
    }

    #[test]
    fn labeled_histograms_record_per_label_value() {
        let r = Arc::new(Recorder::new());
        r.histogram_record_labeled("serve.request_wall_ms", "route", "run", 100);
        r.histogram_record_labeled("serve.request_wall_ms", "route", "run", 200);
        r.histogram_record_labeled("serve.request_wall_ms", "route", "healthz", 1);
        let snap = r.snapshot();
        let run = snap
            .labeled_histograms
            .get(&("serve.request_wall_ms", "route", "run"))
            .expect("run route recorded");
        assert_eq!(run.count(), 2);
        let healthz = snap
            .labeled_histograms
            .get(&("serve.request_wall_ms", "route", "healthz"))
            .expect("healthz route recorded");
        assert_eq!(healthz.count(), 1);
        let dark = Arc::new(Recorder::disabled());
        dark.histogram_record_labeled("f", "k", "v", 1);
        assert!(dark.snapshot().labeled_histograms.is_empty());
    }

    #[test]
    fn counters_accumulate_and_reset_clears() {
        let r = Arc::new(Recorder::new());
        r.counter_add("c", 2);
        r.counter_add("c", 3);
        assert_eq!(r.snapshot().counter("c"), 5);
        r.reset();
        let snap = r.snapshot();
        assert_eq!(snap.counter("c"), 0);
        assert!(snap.spans.is_empty());
    }
}
