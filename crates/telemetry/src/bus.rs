//! Live event bus: bounded, subscriber-based fan-out of telemetry events.
//!
//! The recorder's snapshot/JSONL/Prometheus sinks are *after the fact*;
//! the bus makes the same signals observable *while a run executes*. A
//! [`crate::Recorder`] owns one [`EventBus`] and publishes schema-versioned
//! [`TelemetryEvent`]s for span start/end, counter deltas, phase
//! transitions and job progress. Consumers attach with
//! [`EventBus::subscribe`] and read from a private bounded ring buffer.
//!
//! # Backpressure
//!
//! The hot path never blocks on a consumer. Each subscriber owns a
//! fixed-capacity ring; when it is full the *oldest* event is dropped to
//! make room and the drop is counted (per subscription via
//! [`Subscription::dropped`], process-wide as the
//! `telemetry.events_dropped` counter merged into every snapshot). A
//! subscriber that never reads costs the publisher one bounded push per
//! event — never a wait.
//!
//! # Zero overhead when unobserved
//!
//! Publishing begins with one relaxed atomic load
//! ([`EventBus::has_subscribers`]); with no subscriber attached no event
//! is even constructed, so instrumented hot paths (the engine job loop,
//! the simulator counter flush) pay nothing beyond that load.
//!
//! # Run attribution
//!
//! Every event carries a `run` label so concurrent serve runs interleaved
//! on one recorder stay attributable. Run ids come from [`next_run_id`]
//! and are installed per thread with [`RunScope`]; work spawned onto other
//! threads re-enters the scope there (the engine does this for its
//! workers). Events published outside any scope carry run `0`.

use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use serde::Value;

/// Event format version, bumped on any breaking change to
/// [`TelemetryEvent::to_json`].
pub const EVENT_SCHEMA: u32 = 1;

/// Default ring capacity for [`EventBus::subscribe`]: deep enough that a
/// full quick-scale campaign (phases + per-job progress + counter flushes)
/// fits without drops even if the consumer reads late.
pub const DEFAULT_SUBSCRIBER_CAPACITY: usize = 8192;

/// What happened; the payload of a [`TelemetryEvent`].
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A span opened (`id` is recorder-unique, `parent` the enclosing
    /// span on the opening thread).
    SpanStart {
        /// Span id.
        id: u64,
        /// Enclosing span id, if any.
        parent: Option<u64>,
        /// Static span name.
        name: &'static str,
    },
    /// A span closed.
    SpanEnd {
        /// Span id.
        id: u64,
        /// Static span name.
        name: &'static str,
        /// Wall time in nanoseconds.
        duration_nanos: u64,
    },
    /// A named counter moved by `delta` to `total`.
    CounterDelta {
        /// Counter name.
        name: &'static str,
        /// Amount added.
        delta: u64,
        /// Value after the add.
        total: u64,
    },
    /// A pipeline phase began (phase spans only — see
    /// [`crate::Recorder::phase_span`]).
    PhaseEnter {
        /// Phase (span) name.
        name: &'static str,
    },
    /// A pipeline phase finished.
    PhaseExit {
        /// Phase (span) name.
        name: &'static str,
        /// Wall time in nanoseconds.
        duration_nanos: u64,
    },
    /// One campaign job resolved (from cache or simulation).
    Progress {
        /// Jobs resolved so far, including this one.
        completed: u64,
        /// Unique jobs in the campaign.
        total: u64,
        /// Served from memo/disk cache rather than simulated.
        cached: bool,
    },
}

impl EventKind {
    /// The `event` discriminator used in the JSON form.
    pub fn label(&self) -> &'static str {
        match self {
            EventKind::SpanStart { .. } => "span_start",
            EventKind::SpanEnd { .. } => "span_end",
            EventKind::CounterDelta { .. } => "counter",
            EventKind::PhaseEnter { .. } => "phase_enter",
            EventKind::PhaseExit { .. } => "phase_exit",
            EventKind::Progress { .. } => "progress",
        }
    }
}

/// One published event: a bus-monotonic sequence number, a timestamp on
/// the recorder's epoch clock, the run label, and the payload.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryEvent {
    /// Bus-wide publication order, starting at 1 and strictly increasing.
    pub seq: u64,
    /// Monotonic nanoseconds since the owning recorder's creation.
    pub at_nanos: u64,
    /// Run label ([`current_run_id`] at publish time; 0 = unattributed).
    pub run: u64,
    /// The payload.
    pub kind: EventKind,
}

fn num(v: impl ToString) -> Value {
    Value::Num(v.to_string())
}

impl TelemetryEvent {
    /// Renders the event as one deterministic JSON object:
    /// `{"schema":…,"seq":…,"at_ns":…,"run":…,"event":…,<payload fields>}`.
    /// This is the wire form of the SSE stream and the `GET /events`
    /// firehose in `repro serve`.
    pub fn to_json(&self) -> String {
        let mut map = vec![
            ("schema".into(), num(EVENT_SCHEMA)),
            ("seq".into(), num(self.seq)),
            ("at_ns".into(), num(self.at_nanos)),
            ("run".into(), num(self.run)),
            ("event".into(), Value::Str(self.kind.label().into())),
        ];
        match &self.kind {
            EventKind::SpanStart { id, parent, name } => {
                map.push(("id".into(), num(id)));
                map.push(("parent".into(), parent.map_or(Value::Null, num)));
                map.push(("name".into(), Value::Str((*name).into())));
            }
            EventKind::SpanEnd {
                id,
                name,
                duration_nanos,
            } => {
                map.push(("id".into(), num(id)));
                map.push(("name".into(), Value::Str((*name).into())));
                map.push(("dur_ns".into(), num(duration_nanos)));
            }
            EventKind::CounterDelta { name, delta, total } => {
                map.push(("name".into(), Value::Str((*name).into())));
                map.push(("delta".into(), num(delta)));
                map.push(("total".into(), num(total)));
            }
            EventKind::PhaseEnter { name } => {
                map.push(("name".into(), Value::Str((*name).into())));
            }
            EventKind::PhaseExit {
                name,
                duration_nanos,
            } => {
                map.push(("name".into(), Value::Str((*name).into())));
                map.push(("dur_ns".into(), num(duration_nanos)));
            }
            EventKind::Progress {
                completed,
                total,
                cached,
            } => {
                map.push(("completed".into(), num(completed)));
                map.push(("total".into(), num(total)));
                map.push(("cached".into(), Value::Bool(*cached)));
            }
        }
        serde_json::to_string(&Value::Map(map)).expect("event value tree serializes")
    }
}

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[derive(Debug, Default)]
struct SubQueue {
    events: VecDeque<TelemetryEvent>,
    dropped: u64,
}

#[derive(Debug)]
struct SubShared {
    queue: Mutex<SubQueue>,
    ready: Condvar,
    capacity: usize,
    /// Only events with this run label are delivered, when set.
    run_filter: Option<u64>,
    closed: AtomicBool,
}

#[derive(Debug, Default)]
struct BusInner {
    seq: AtomicU64,
    /// Live subscriber count — the publish fast path's only read.
    active: AtomicUsize,
    /// Events dropped (ring overflow) across all subscribers, ever.
    dropped: AtomicU64,
    subscribers: Mutex<Vec<Arc<SubShared>>>,
}

/// The fan-out hub one [`crate::Recorder`] publishes into. See the module
/// docs for semantics.
#[derive(Debug, Default)]
pub struct EventBus {
    inner: Arc<BusInner>,
}

impl EventBus {
    /// A bus with no subscribers.
    pub fn new() -> EventBus {
        EventBus::default()
    }

    /// True when at least one subscription is live. One relaxed atomic
    /// load — callers gate event construction on it so unobserved hot
    /// paths stay free.
    #[inline]
    pub fn has_subscribers(&self) -> bool {
        self.inner.active.load(Ordering::Relaxed) > 0
    }

    /// Live subscription count.
    pub fn subscriber_count(&self) -> usize {
        self.inner.active.load(Ordering::Relaxed)
    }

    /// Total events dropped to ring overflow across all subscribers, ever
    /// (surfaces as the `telemetry.events_dropped` counter in snapshots).
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// Zeroes the cumulative drop counter (used by `Recorder::reset` so a
    /// reset recorder reports no stale drops).
    pub(crate) fn reset_dropped(&self) {
        self.inner.dropped.store(0, Ordering::Relaxed);
    }

    /// Attaches a subscriber with a ring of `capacity` events (min 1),
    /// receiving every event published from now on.
    pub fn subscribe(&self, capacity: usize) -> Subscription {
        self.subscribe_inner(capacity, None)
    }

    /// Like [`EventBus::subscribe`], but delivers only events carrying the
    /// given run label — the per-run SSE stream's filter, applied at
    /// publish time so unrelated runs cannot evict this run's events.
    pub fn subscribe_run(&self, capacity: usize, run: u64) -> Subscription {
        self.subscribe_inner(capacity, Some(run))
    }

    fn subscribe_inner(&self, capacity: usize, run_filter: Option<u64>) -> Subscription {
        let shared = Arc::new(SubShared {
            queue: Mutex::new(SubQueue::default()),
            ready: Condvar::new(),
            capacity: capacity.max(1),
            run_filter,
            closed: AtomicBool::new(false),
        });
        let mut subs = lock(&self.inner.subscribers);
        subs.push(Arc::clone(&shared));
        self.inner.active.store(subs.len(), Ordering::Relaxed);
        drop(subs);
        Subscription {
            shared,
            bus: Arc::clone(&self.inner),
        }
    }

    /// Publishes one event to every live subscriber. Cheap no-op without
    /// subscribers; never blocks on a slow consumer (drop-oldest).
    pub fn publish(&self, run: u64, at_nanos: u64, kind: EventKind) {
        if !self.has_subscribers() {
            return;
        }
        let event = TelemetryEvent {
            seq: self.inner.seq.fetch_add(1, Ordering::SeqCst) + 1,
            at_nanos,
            run,
            kind,
        };
        let subs = lock(&self.inner.subscribers);
        for sub in subs.iter() {
            if sub.run_filter.is_some_and(|f| f != run) {
                continue;
            }
            let mut queue = lock(&sub.queue);
            if queue.events.len() >= sub.capacity {
                queue.events.pop_front();
                queue.dropped += 1;
                self.inner.dropped.fetch_add(1, Ordering::Relaxed);
            }
            queue.events.push_back(event.clone());
            drop(queue);
            sub.ready.notify_one();
        }
    }
}

/// One subscriber's handle: a bounded ring the bus pushes into. Dropping
/// it detaches from the bus (restoring the zero-overhead fast path when it
/// was the last one).
#[derive(Debug)]
pub struct Subscription {
    shared: Arc<SubShared>,
    bus: Arc<BusInner>,
}

impl Subscription {
    /// Pops the oldest buffered event without waiting.
    pub fn try_recv(&self) -> Option<TelemetryEvent> {
        lock(&self.shared.queue).events.pop_front()
    }

    /// Pops the oldest buffered event, waiting up to `timeout` for one to
    /// arrive. `None` on timeout (or after [`Subscription::close`] with an
    /// empty ring).
    pub fn recv_timeout(&self, timeout: Duration) -> Option<TelemetryEvent> {
        let end = Instant::now() + timeout;
        let mut queue = lock(&self.shared.queue);
        loop {
            if let Some(event) = queue.events.pop_front() {
                return Some(event);
            }
            if self.shared.closed.load(Ordering::SeqCst) {
                return None;
            }
            let now = Instant::now();
            if now >= end {
                return None;
            }
            queue = self
                .shared
                .ready
                .wait_timeout(queue, end - now)
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .0;
        }
    }

    /// Events this subscription lost to ring overflow.
    pub fn dropped(&self) -> u64 {
        lock(&self.shared.queue).dropped
    }

    /// Marks the subscription closed and wakes any blocked
    /// [`Subscription::recv_timeout`] — lets an owner on another thread
    /// tell the consumer to wind down without waiting out its timeout.
    pub fn close(&self) {
        self.shared.closed.store(true, Ordering::SeqCst);
        self.shared.ready.notify_all();
    }
}

impl Drop for Subscription {
    fn drop(&mut self) {
        self.close();
        let mut subs = lock(&self.bus.subscribers);
        subs.retain(|s| !Arc::ptr_eq(s, &self.shared));
        self.bus.active.store(subs.len(), Ordering::Relaxed);
    }
}

static NEXT_RUN: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static CURRENT_RUN: Cell<u64> = const { Cell::new(0) };
}

/// Allocates a fresh process-unique run id (never 0).
pub fn next_run_id() -> u64 {
    NEXT_RUN.fetch_add(1, Ordering::Relaxed)
}

/// The run id installed on this thread by the innermost live
/// [`RunScope`], or 0 outside any scope.
pub fn current_run_id() -> u64 {
    CURRENT_RUN.with(Cell::get)
}

/// Thread-local run attribution guard: while alive, spans opened and
/// events published from this thread carry the given run id. Scopes nest;
/// dropping restores the previous id. Work handed to another thread must
/// re-enter the scope there.
#[derive(Debug)]
pub struct RunScope {
    prev: u64,
}

impl RunScope {
    /// Installs `run` as this thread's current run id until the guard
    /// drops.
    pub fn enter(run: u64) -> RunScope {
        let prev = CURRENT_RUN.with(|cell| cell.replace(run));
        RunScope { prev }
    }
}

impl Drop for RunScope {
    fn drop(&mut self) {
        CURRENT_RUN.with(|cell| cell.set(self.prev));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter(name: &'static str, delta: u64, total: u64) -> EventKind {
        EventKind::CounterDelta { name, delta, total }
    }

    #[test]
    fn events_arrive_in_publication_order_with_monotonic_seq() {
        let bus = EventBus::new();
        let sub = bus.subscribe(16);
        for i in 0..5 {
            bus.publish(7, i * 10, counter("jobs", 1, i + 1));
        }
        let mut last_seq = 0;
        for i in 0..5u64 {
            let event = sub.try_recv().expect("event buffered");
            assert!(event.seq > last_seq, "seq must strictly increase");
            last_seq = event.seq;
            assert_eq!(event.run, 7);
            assert_eq!(event.at_nanos, i * 10);
        }
        assert!(sub.try_recv().is_none());
        assert_eq!(sub.dropped(), 0);
    }

    #[test]
    fn full_ring_drops_oldest_and_counts() {
        let bus = EventBus::new();
        let sub = bus.subscribe(3);
        for i in 1..=10u64 {
            bus.publish(0, i, counter("c", 1, i));
        }
        assert_eq!(sub.dropped(), 7);
        assert_eq!(bus.dropped(), 7);
        // The survivors are the *newest* three, still in order.
        let kept: Vec<u64> = std::iter::from_fn(|| sub.try_recv())
            .map(|e| e.at_nanos)
            .collect();
        assert_eq!(kept, vec![8, 9, 10]);
    }

    #[test]
    fn no_subscriber_means_no_sequence_movement() {
        let bus = EventBus::new();
        assert!(!bus.has_subscribers());
        bus.publish(0, 0, counter("c", 1, 1));
        // The fast path bailed before allocating a sequence number.
        assert_eq!(bus.inner.seq.load(Ordering::SeqCst), 0);
        let sub = bus.subscribe(4);
        assert!(bus.has_subscribers());
        bus.publish(0, 0, counter("c", 1, 2));
        assert_eq!(sub.try_recv().unwrap().seq, 1);
        drop(sub);
        assert!(!bus.has_subscribers(), "drop detaches");
    }

    #[test]
    fn run_filter_delivers_only_matching_events() {
        let bus = EventBus::new();
        let all = bus.subscribe(16);
        let only_two = bus.subscribe_run(16, 2);
        bus.publish(1, 0, counter("a", 1, 1));
        bus.publish(2, 0, counter("b", 1, 1));
        bus.publish(3, 0, counter("c", 1, 1));
        bus.publish(2, 0, counter("d", 1, 2));
        let all_runs: Vec<u64> = std::iter::from_fn(|| all.try_recv())
            .map(|e| e.run)
            .collect();
        assert_eq!(all_runs, vec![1, 2, 3, 2]);
        let filtered: Vec<u64> = std::iter::from_fn(|| only_two.try_recv())
            .map(|e| e.run)
            .collect();
        assert_eq!(filtered, vec![2, 2]);
    }

    #[test]
    fn recv_timeout_wakes_on_publish_and_on_close() {
        let bus = EventBus::new();
        let sub = Arc::new(bus.subscribe(4));
        let waiter = Arc::clone(&sub);
        let handle = std::thread::spawn(move || waiter.recv_timeout(Duration::from_secs(30)));
        std::thread::sleep(Duration::from_millis(50));
        bus.publish(9, 1, counter("c", 1, 1));
        let got = handle.join().expect("waiter thread");
        assert_eq!(got.expect("event delivered").run, 9);

        let waiter = Arc::clone(&sub);
        let handle = std::thread::spawn(move || waiter.recv_timeout(Duration::from_secs(30)));
        std::thread::sleep(Duration::from_millis(50));
        sub.close();
        assert!(handle.join().expect("waiter thread").is_none());
    }

    #[test]
    fn run_scopes_nest_and_restore() {
        assert_eq!(current_run_id(), 0);
        let outer = RunScope::enter(5);
        assert_eq!(current_run_id(), 5);
        {
            let _inner = RunScope::enter(6);
            assert_eq!(current_run_id(), 6);
        }
        assert_eq!(current_run_id(), 5);
        drop(outer);
        assert_eq!(current_run_id(), 0);
    }

    #[test]
    fn run_ids_are_unique_and_nonzero() {
        let a = next_run_id();
        let b = next_run_id();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn json_form_is_versioned_and_deterministic() {
        let event = TelemetryEvent {
            seq: 3,
            at_nanos: 42,
            run: 7,
            kind: EventKind::PhaseEnter {
                name: "engine.simulate",
            },
        };
        assert_eq!(
            event.to_json(),
            "{\"schema\":1,\"seq\":3,\"at_ns\":42,\"run\":7,\
             \"event\":\"phase_enter\",\"name\":\"engine.simulate\"}"
        );
        let end = TelemetryEvent {
            seq: 4,
            at_nanos: 99,
            run: 7,
            kind: EventKind::Progress {
                completed: 2,
                total: 8,
                cached: true,
            },
        };
        let json = end.to_json();
        assert!(json.contains("\"event\":\"progress\""), "{json}");
        assert!(json.contains("\"completed\":2"), "{json}");
        assert!(json.contains("\"cached\":true"), "{json}");
    }

    #[test]
    fn slow_subscriber_never_blocks_publisher() {
        // A subscriber that never reads: 10k publishes must complete
        // promptly (bounded ring, drop-oldest), not wedge the hot path.
        let bus = EventBus::new();
        let sub = bus.subscribe(8);
        let start = Instant::now();
        for i in 0..10_000u64 {
            bus.publish(1, i, counter("hot", 1, i + 1));
        }
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "publishing into a stuck subscriber must stay O(1) per event"
        );
        assert_eq!(sub.dropped(), 10_000 - 8);
    }
}
