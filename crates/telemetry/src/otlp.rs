//! OTLP/JSON-shaped span export.
//!
//! Writes a recorder snapshot as one JSON document shaped like an OTLP
//! `ExportTraceServiceRequest` (the `resourceSpans` → `scopeSpans` →
//! `spans` hierarchy of the OpenTelemetry protocol's JSON mapping), so
//! existing span data loads into Jaeger/Tempo-style tooling without any
//! OpenTelemetry SDK dependency — std-only, consistent with the
//! workspace's offline policy.
//!
//! Mapping choices:
//!
//! * **traceId** — 32 hex chars: a fixed `horizon` prefix word plus the
//!   span's run id, so every span of one run lands in one trace and
//!   unattributed spans (run 0) share a catch-all trace. Never all-zero.
//! * **spanId / parentSpanId** — 16 hex chars from the recorder-unique
//!   span id (ids start at 1, so never all-zero). `parentSpanId` is
//!   omitted for roots.
//! * **timestamps** — `startTimeUnixNano`/`endTimeUnixNano` re-anchor the
//!   recorder's monotonic offsets to the wall clock via
//!   [`TelemetrySnapshot::epoch_unix_nanos`], rendered as decimal strings
//!   per the OTLP JSON mapping of 64-bit integers.
//! * **attributes** — span fields, plus `thread.id` and `horizon.run`.

use std::io::{self, Write};

use serde::Value;

use crate::recorder::FieldValue;
use crate::snapshot::TelemetrySnapshot;

/// High word of every trace id: the ASCII bytes `horizon!`. Guarantees a
/// non-zero trace id even for run 0.
const TRACE_ID_PREFIX: u64 = 0x686f_7269_7a6f_6e21;

fn num(v: impl ToString) -> Value {
    Value::Num(v.to_string())
}

fn str_value(s: impl Into<String>) -> Value {
    Value::Str(s.into())
}

/// `{"key":…,"value":{…}}` — one OTLP KeyValue.
fn attribute(key: &str, value: Value) -> Value {
    Value::Map(vec![
        ("key".into(), str_value(key)),
        ("value".into(), value),
    ])
}

/// OTLP AnyValue for one span field. 64-bit integers are decimal strings
/// per the OTLP JSON mapping; doubles stay JSON numbers.
fn any_value(v: &FieldValue) -> Value {
    match v {
        FieldValue::Bool(b) => Value::Map(vec![("boolValue".into(), Value::Bool(*b))]),
        FieldValue::U64(n) => Value::Map(vec![("intValue".into(), str_value(n.to_string()))]),
        FieldValue::I64(n) => Value::Map(vec![("intValue".into(), str_value(n.to_string()))]),
        FieldValue::F64(x) => Value::Map(vec![("doubleValue".into(), num(x))]),
        FieldValue::Str(s) => Value::Map(vec![("stringValue".into(), str_value(s.clone()))]),
    }
}

/// Writes the snapshot as an OTLP/JSON trace-export document for
/// `repro --otlp-out`.
///
/// # Errors
///
/// Propagates I/O errors from `out`.
pub fn write_otlp(
    snapshot: &TelemetrySnapshot,
    service_name: &str,
    out: &mut impl Write,
) -> io::Result<()> {
    let mut spans: Vec<&crate::SpanRecord> = snapshot.spans.iter().collect();
    spans.sort_by_key(|s| s.id);
    let otlp_spans: Vec<Value> = spans
        .iter()
        .map(|span| {
            let start = snapshot.epoch_unix_nanos.saturating_add(span.start_nanos);
            let end = start.saturating_add(span.duration_nanos);
            let mut attributes = vec![
                attribute(
                    "thread.id",
                    Value::Map(vec![(
                        "intValue".into(),
                        str_value(span.thread.to_string()),
                    )]),
                ),
                attribute(
                    "horizon.run",
                    Value::Map(vec![("intValue".into(), str_value(span.run.to_string()))]),
                ),
            ];
            attributes.extend(span.fields.iter().map(|(k, v)| attribute(k, any_value(v))));
            let mut map = vec![
                (
                    "traceId".into(),
                    str_value(format!("{TRACE_ID_PREFIX:016x}{:016x}", span.run)),
                ),
                ("spanId".into(), str_value(format!("{:016x}", span.id))),
            ];
            if let Some(parent) = span.parent {
                map.push(("parentSpanId".into(), str_value(format!("{parent:016x}"))));
            }
            map.extend([
                ("name".into(), str_value(span.name)),
                // SPAN_KIND_INTERNAL — all recorded spans are in-process.
                ("kind".into(), num(1)),
                ("startTimeUnixNano".into(), str_value(start.to_string())),
                ("endTimeUnixNano".into(), str_value(end.to_string())),
                ("attributes".into(), Value::Seq(attributes)),
                ("status".into(), Value::Map(Vec::new())),
            ]);
            Value::Map(map)
        })
        .collect();

    let document = Value::Map(vec![(
        "resourceSpans".into(),
        Value::Seq(vec![Value::Map(vec![
            (
                "resource".into(),
                Value::Map(vec![(
                    "attributes".into(),
                    Value::Seq(vec![attribute(
                        "service.name",
                        Value::Map(vec![("stringValue".into(), str_value(service_name))]),
                    )]),
                )]),
            ),
            (
                "scopeSpans".into(),
                Value::Seq(vec![Value::Map(vec![
                    (
                        "scope".into(),
                        Value::Map(vec![
                            ("name".into(), str_value("horizon-telemetry")),
                            ("version".into(), str_value(env!("CARGO_PKG_VERSION"))),
                        ]),
                    ),
                    ("spans".into(), Value::Seq(otlp_spans)),
                ])]),
            ),
        ])]),
    )]);
    let text = serde_json::to_string(&document)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    writeln!(out, "{text}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Recorder, RunScope};
    use std::sync::Arc;

    fn export() -> Value {
        let r = Arc::new(Recorder::new());
        let _scope = RunScope::enter(9);
        {
            let mut outer = r.span("campaign");
            outer.record("cells", 4u64);
            outer.record("quick", true);
            let _inner = r.span("engine.expand");
        }
        let mut buf = Vec::new();
        write_otlp(&r.snapshot(), "horizon-repro", &mut buf).unwrap();
        serde_json::from_str(&String::from_utf8(buf).unwrap()).unwrap()
    }

    fn spans_of(doc: &Value) -> &[Value] {
        let resource_spans = match doc.field("resourceSpans").unwrap() {
            Value::Seq(s) => &s[0],
            _ => panic!("resourceSpans is a list"),
        };
        let scope_spans = match resource_spans.field("scopeSpans").unwrap() {
            Value::Seq(s) => &s[0],
            _ => panic!("scopeSpans is a list"),
        };
        match scope_spans.field("spans").unwrap() {
            Value::Seq(s) => s,
            _ => panic!("spans is a list"),
        }
    }

    fn str_field<'a>(v: &'a Value, key: &str) -> &'a str {
        match v.field(key).unwrap() {
            Value::Str(s) => s,
            other => panic!("{key}: expected string, got {other:?}"),
        }
    }

    #[test]
    fn document_has_resource_scope_span_hierarchy() {
        let doc = export();
        let spans = spans_of(&doc);
        assert_eq!(spans.len(), 2);
        let resource_spans = match doc.field("resourceSpans").unwrap() {
            Value::Seq(s) => &s[0],
            _ => unreachable!(),
        };
        let resource = resource_spans.field("resource").unwrap();
        let attrs = match resource.field("attributes").unwrap() {
            Value::Seq(s) => s,
            _ => panic!(),
        };
        assert_eq!(str_field(&attrs[0], "key"), "service.name");
    }

    #[test]
    fn ids_are_hex_strings_of_spec_length_and_parents_link() {
        let doc = export();
        let spans = spans_of(&doc);
        // Spans are sorted by id: expand closed first but campaign has the
        // smaller id; find by name.
        let campaign = spans
            .iter()
            .find(|s| str_field(s, "name") == "campaign")
            .unwrap();
        let expand = spans
            .iter()
            .find(|s| str_field(s, "name") == "engine.expand")
            .unwrap();
        for span in [campaign, expand] {
            let trace_id = str_field(span, "traceId");
            assert_eq!(trace_id.len(), 32);
            assert!(trace_id.chars().all(|c| c.is_ascii_hexdigit()));
            assert_ne!(trace_id, "0".repeat(32));
            let span_id = str_field(span, "spanId");
            assert_eq!(span_id.len(), 16);
            assert!(span_id.chars().all(|c| c.is_ascii_hexdigit()));
            assert_ne!(span_id, "0".repeat(16));
        }
        assert_eq!(
            str_field(campaign, "traceId"),
            str_field(expand, "traceId"),
            "same run → same trace"
        );
        assert!(str_field(campaign, "traceId").ends_with(&format!("{:016x}", 9)));
        assert_eq!(
            str_field(expand, "parentSpanId"),
            str_field(campaign, "spanId")
        );
        assert!(campaign.field("parentSpanId").is_err(), "roots omit it");
    }

    #[test]
    fn timestamps_are_unix_nano_strings_with_start_before_end() {
        let doc = export();
        for span in spans_of(&doc) {
            let start: u64 = str_field(span, "startTimeUnixNano").parse().unwrap();
            let end: u64 = str_field(span, "endTimeUnixNano").parse().unwrap();
            assert!(start <= end);
            // Sanity: after 2020-01-01 in unix nanos.
            assert!(start > 1_577_836_800_000_000_000, "{start}");
        }
    }

    #[test]
    fn fields_become_typed_attributes() {
        let doc = export();
        let spans = spans_of(&doc);
        let campaign = spans
            .iter()
            .find(|s| str_field(s, "name") == "campaign")
            .unwrap();
        let attrs = match campaign.field("attributes").unwrap() {
            Value::Seq(s) => s,
            _ => panic!(),
        };
        let find = |key: &str| {
            attrs
                .iter()
                .find(|a| str_field(a, "key") == key)
                .unwrap_or_else(|| panic!("attribute {key}"))
                .field("value")
                .unwrap()
        };
        assert_eq!(
            str_field(find("cells"), "intValue"),
            "4",
            "ints are decimal strings per the OTLP JSON mapping"
        );
        assert_eq!(
            find("quick").field("boolValue").unwrap(),
            &Value::Bool(true)
        );
        assert_eq!(str_field(find("horizon.run"), "intValue"), "9");
        assert!(find("thread.id").field("intValue").is_ok());
    }
}
