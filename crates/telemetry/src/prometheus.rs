//! Prometheus-style text exposition sink.
//!
//! Not a scrape endpoint — a plain-text dump in the exposition format so
//! runs can be diffed and plotted with standard tooling. Counters become
//! `horizon_<name>`, explicit histograms become `horizon_<name>` histogram
//! families, and per-span-name wall times are exposed as one histogram
//! family `horizon_span_wall_nanos` with a `phase` label. Every histogram
//! family additionally gets a `<family>_quantile` gauge with
//! `q="0.5"/"0.9"/"0.99"` labels — pre-computed p50/p90/p99 bucket upper
//! bounds for readers that don't do `histogram_quantile` themselves.
//! Single-label histograms (e.g. `serve.request_wall_ms` by `route`)
//! render as one family per name with their label on every series.

use std::io::{self, Write};

use crate::histogram::Histogram;
use crate::snapshot::TelemetrySnapshot;

/// `engine.queue_wait_ns` → `engine_queue_wait_ns` (metric-name charset).
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

fn write_histogram(
    out: &mut impl Write,
    family: &str,
    labels: &str,
    h: &Histogram,
) -> io::Result<()> {
    let mut cumulative = 0u64;
    for (le, count) in h.buckets() {
        cumulative += count;
        // Skip interior empty buckets but keep the ones that carry counts;
        // cumulative values stay correct because they accumulate anyway.
        if count > 0 {
            writeln!(out, "{family}_bucket{{{labels}le=\"{le}\"}} {cumulative}")?;
        }
    }
    cumulative += h.overflow();
    writeln!(out, "{family}_bucket{{{labels}le=\"+Inf\"}} {cumulative}")?;
    writeln!(
        out,
        "{family}_sum{{{labels_trim}}} {}",
        h.sum(),
        labels_trim = labels.trim_end_matches(',')
    )?;
    writeln!(
        out,
        "{family}_count{{{labels_trim}}} {}",
        h.count(),
        labels_trim = labels.trim_end_matches(',')
    )?;
    Ok(())
}

/// The `<family>_quantile` companion gauge: p50/p90/p99 bucket upper
/// bounds. Callers emit the `# TYPE` line once per family.
fn write_quantiles(
    out: &mut impl Write,
    family: &str,
    labels: &str,
    h: &Histogram,
) -> io::Result<()> {
    for (label, q) in [("0.5", 0.50), ("0.9", 0.90), ("0.99", 0.99)] {
        writeln!(
            out,
            "{family}_quantile{{{labels}q=\"{label}\"}} {}",
            h.quantile_upper_bound(q)
        )?;
    }
    Ok(())
}

/// Writes the snapshot in Prometheus text exposition format.
///
/// # Errors
///
/// Propagates I/O errors from `out`.
pub fn write_prometheus(snapshot: &TelemetrySnapshot, out: &mut impl Write) -> io::Result<()> {
    writeln!(out, "# TYPE horizon_dropped_spans counter")?;
    writeln!(out, "horizon_dropped_spans {}", snapshot.dropped_spans)?;

    for (name, value) in &snapshot.counters {
        let metric = format!("horizon_{}", sanitize(name));
        writeln!(out, "# TYPE {metric} counter")?;
        writeln!(out, "{metric} {value}")?;
    }

    for (name, value) in &snapshot.gauges {
        let metric = format!("horizon_{}", sanitize(name));
        writeln!(out, "# TYPE {metric} gauge")?;
        writeln!(out, "{metric} {value}")?;
    }

    for (name, h) in &snapshot.histograms {
        let metric = format!("horizon_{}", sanitize(name));
        writeln!(out, "# TYPE {metric} histogram")?;
        write_histogram(out, &metric, "", h)?;
        writeln!(out, "# TYPE {metric}_quantile gauge")?;
        write_quantiles(out, &metric, "", h)?;
    }

    // Single-label histograms: one family per metric name, the label on
    // every series. BTreeMap order keeps a family's entries contiguous.
    let mut last_family: Option<&'static str> = None;
    for (&(family, label_key, label_value), h) in &snapshot.labeled_histograms {
        let metric = format!("horizon_{}", sanitize(family));
        if last_family != Some(family) {
            writeln!(out, "# TYPE {metric} histogram")?;
            last_family = Some(family);
        }
        let labels = format!("{}=\"{label_value}\",", sanitize(label_key));
        write_histogram(out, &metric, &labels, h)?;
    }
    let mut last_family: Option<&'static str> = None;
    for (&(family, label_key, label_value), h) in &snapshot.labeled_histograms {
        let metric = format!("horizon_{}", sanitize(family));
        if last_family != Some(family) {
            writeln!(out, "# TYPE {metric}_quantile gauge")?;
            last_family = Some(family);
        }
        let labels = format!("{}=\"{label_value}\",", sanitize(label_key));
        write_quantiles(out, &metric, &labels, h)?;
    }

    if !snapshot.span_wall.is_empty() {
        writeln!(out, "# TYPE horizon_span_wall_nanos histogram")?;
        for (name, h) in &snapshot.span_wall {
            let labels = format!("phase=\"{name}\",");
            write_histogram(out, "horizon_span_wall_nanos", &labels, h)?;
        }
        writeln!(out, "# TYPE horizon_span_wall_nanos_quantile gauge")?;
        for (name, h) in &snapshot.span_wall {
            let labels = format!("phase=\"{name}\",");
            write_quantiles(out, "horizon_span_wall_nanos", &labels, h)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;
    use std::sync::Arc;

    fn sample_dump() -> String {
        let r = Arc::new(Recorder::new());
        r.counter_add("engine.memo_hits", 5);
        r.counter_add("engine.disk_hits", 1);
        r.gauge_add("serve.active_runs", 2);
        r.gauge_add("serve.active_runs", -1);
        for v in [800, 3000, 70_000] {
            r.histogram_record("engine.queue_wait_ns", v);
        }
        r.histogram_record_labeled("serve.request_wall_ms", "route", "run", 40);
        r.histogram_record_labeled("serve.request_wall_ms", "route", "healthz", 1);
        {
            let _s = r.span("stats.eigen");
        }
        let mut buf = Vec::new();
        write_prometheus(&r.snapshot(), &mut buf).unwrap();
        String::from_utf8(buf).unwrap()
    }

    #[test]
    fn counters_are_typed_and_sanitized() {
        let text = sample_dump();
        assert!(text.contains("# TYPE horizon_engine_memo_hits counter"));
        assert!(text.contains("horizon_engine_memo_hits 5"));
        assert!(text.contains("horizon_engine_disk_hits 1"));
        assert!(!text.contains("engine.memo_hits"), "names are sanitized");
    }

    #[test]
    fn gauges_are_typed_gauge_and_carry_levels() {
        let text = sample_dump();
        assert!(text.contains("# TYPE horizon_serve_active_runs gauge"));
        assert!(text.contains("horizon_serve_active_runs 1"));
    }

    #[test]
    fn histogram_family_is_cumulative_and_closed() {
        let text = sample_dump();
        assert!(text.contains("# TYPE horizon_engine_queue_wait_ns histogram"));
        assert!(text.contains("horizon_engine_queue_wait_ns_bucket{le=\"1024\"} 1"));
        assert!(text.contains("horizon_engine_queue_wait_ns_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("horizon_engine_queue_wait_ns_count{} 3"));
        assert!(text.contains("horizon_engine_queue_wait_ns_sum{} 73800"));
    }

    #[test]
    fn span_wall_exposed_with_phase_label() {
        let text = sample_dump();
        assert!(text.contains("# TYPE horizon_span_wall_nanos histogram"));
        assert!(
            text.contains("horizon_span_wall_nanos_bucket{phase=\"stats.eigen\",le=\"+Inf\"} 1")
        );
        assert!(text.contains("horizon_span_wall_nanos_count{phase=\"stats.eigen\"} 1"));
    }

    #[test]
    fn quantile_gauges_accompany_every_histogram_family() {
        let text = sample_dump();
        assert!(text.contains("# TYPE horizon_engine_queue_wait_ns_quantile gauge"));
        assert!(text.contains("horizon_engine_queue_wait_ns_quantile{q=\"0.5\"} 4096"));
        assert!(text.contains("horizon_engine_queue_wait_ns_quantile{q=\"0.99\"} 131072"));
        assert!(text.contains("horizon_span_wall_nanos_quantile{phase=\"stats.eigen\",q=\"0.9\"}"));
    }

    #[test]
    fn labeled_histograms_render_one_family_with_label_series() {
        let text = sample_dump();
        assert!(text.contains("# TYPE horizon_serve_request_wall_ms histogram"));
        assert_eq!(
            text.matches("# TYPE horizon_serve_request_wall_ms histogram")
                .count(),
            1,
            "one TYPE line per family, not per label value"
        );
        assert!(text.contains("horizon_serve_request_wall_ms_bucket{route=\"run\",le=\"+Inf\"} 1"));
        assert!(text.contains("horizon_serve_request_wall_ms_count{route=\"healthz\"} 1"));
        assert!(text.contains("horizon_serve_request_wall_ms_quantile{route=\"run\",q=\"0.5\"}"));
    }

    #[test]
    fn parses_line_by_line() {
        // Every non-comment line is `name{labels} value` or `name value`.
        for line in sample_dump().lines() {
            if line.starts_with('#') {
                assert!(line.starts_with("# TYPE "), "{line}");
                continue;
            }
            let (metric, value) = line.rsplit_once(' ').expect("metric and value");
            assert!(!metric.is_empty());
            assert!(value.parse::<f64>().is_ok(), "{line}");
        }
    }
}
