//! Power-of-two-bucketed histograms for latency-like `u64` samples.

/// Smallest bucket upper bound: `2^FIRST_SHIFT` (1.024 µs when samples are
/// nanoseconds).
const FIRST_SHIFT: u32 = 10;
/// Largest finite bucket upper bound: `2^LAST_SHIFT` (~68.7 s in ns).
const LAST_SHIFT: u32 = 36;
/// Number of finite buckets.
const BUCKETS: usize = (LAST_SHIFT - FIRST_SHIFT + 1) as usize;

/// A fixed-layout histogram: finite buckets with upper bounds
/// `2^10, 2^11, …, 2^36`, plus an overflow bucket. The layout is identical
/// for every histogram, so dumps from different runs line up when diffed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Per-bucket (non-cumulative) counts; `counts[i]` covers
    /// `(2^(10+i-1), 2^(10+i)]` (the first bucket covers `[0, 2^10]`).
    counts: [u64; BUCKETS],
    overflow: u64,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: [0; BUCKETS],
            overflow: 0,
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        match Self::bucket_index(value) {
            Some(i) => self.counts[i] += 1,
            None => self.overflow += 1,
        }
    }

    fn bucket_index(value: u64) -> Option<usize> {
        if value <= (1 << FIRST_SHIFT) {
            return Some(0);
        }
        // Smallest i with value <= 2^(FIRST_SHIFT + i).
        let bits = 64 - (value - 1).leading_zeros(); // ceil(log2(value))
        if bits > LAST_SHIFT {
            None
        } else {
            Some((bits - FIRST_SHIFT) as usize)
        }
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// `(upper bound, per-bucket count)` for every finite bucket, in
    /// ascending bound order. The overflow count is available via
    /// [`Histogram::overflow`].
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (1u64 << (FIRST_SHIFT + i as u32), c))
    }

    /// Samples above the largest finite bucket bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Upper bound of the bucket containing the `q`-quantile (`q` in
    /// `[0, 1]`), or [`Histogram::max`] for samples in the overflow bucket.
    /// A coarse tail estimator: within a bucket the true quantile may be up
    /// to 2× smaller.
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (bound, c) in self.buckets() {
            seen += c;
            if seen >= rank {
                return bound;
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile_upper_bound(0.99), 0);
    }

    #[test]
    fn samples_land_in_correct_buckets() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(1024); // boundary: first bucket is [0, 2^10]
        h.record(1025); // next bucket
        h.record(1 << 36); // last finite bucket
        h.record((1 << 36) + 1); // overflow
        let counts: Vec<(u64, u64)> = h.buckets().filter(|&(_, c)| c > 0).collect();
        assert_eq!(counts[0], (1024, 2));
        assert_eq!(counts[1], (2048, 1));
        assert_eq!(counts[2], (1 << 36, 1));
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), (1 << 36) + 1);
    }

    #[test]
    fn cumulative_counts_cover_all_finite_samples() {
        let mut h = Histogram::new();
        for v in [3, 500, 70_000, 1_000_000, 1_000_000_000] {
            h.record(v);
        }
        let total: u64 = h.buckets().map(|(_, c)| c).sum();
        assert_eq!(total + h.overflow(), h.count());
    }

    #[test]
    fn quantile_bounds_are_monotone_and_bracket_samples() {
        let mut h = Histogram::new();
        for i in 1..=1000u64 {
            h.record(i * 1000); // 1µs .. 1ms
        }
        let p50 = h.quantile_upper_bound(0.5);
        let p99 = h.quantile_upper_bound(0.99);
        assert!(p50 <= p99);
        assert!((500_000..=1_048_576).contains(&p50), "{p50}");
        assert!(p99 >= 990_000, "{p99}");
    }

    #[test]
    fn mean_tracks_sum() {
        let mut h = Histogram::new();
        h.record(10);
        h.record(30);
        assert_eq!(h.sum(), 40);
        assert_eq!(h.mean(), 20.0);
    }
}
