//! Span tracing and run metrics for the horizon pipeline.
//!
//! The paper's methodology is a multi-stage pipeline (counter measurement →
//! standardization → PCA → clustering → subsetting/validation); this crate
//! makes where the wall clock goes *observable* without changing what any
//! stage computes. It is deliberately zero-dependency beyond the vendored
//! `serde`/`serde_json` (consistent with the workspace's offline policy —
//! no external `tracing` crate) and cheap enough to leave compiled into
//! every hot path:
//!
//! * **Spans** — hierarchical, named intervals with monotonic start/stop
//!   times, a thread id, and structured `key=value` fields. Parents come
//!   from a per-thread span stack, or explicitly (for work handed to a
//!   worker thread). A span is recorded when its guard drops.
//! * **Counters** — monotonically increasing named `u64`s (cache hits,
//!   simulated instructions, …).
//! * **Histograms** — power-of-two-bucketed distributions of `u64` samples
//!   (per-job simulation time, queue wait, …). Every span's wall time is
//!   additionally folded into a per-name histogram, so phase breakdowns
//!   survive even if individual span records are capped.
//!
//! Four sinks read a [`Recorder`]'s state after the fact:
//!
//! 1. [`Recorder::snapshot`] — an in-memory [`TelemetrySnapshot`],
//!    queryable in tests and used to render the `repro --stats` phase
//!    table.
//! 2. [`write_trace`] / [`write_trace_with_meta`] — a JSONL trace (one
//!    event per line, deterministic field order) for `repro --trace-out`.
//! 3. [`write_prometheus`] — a Prometheus-style text exposition dump for
//!    `repro --metrics-out`, diffable and plottable.
//! 4. [`write_otlp`] — an OTLP/JSON-shaped span export for
//!    `repro --otlp-out`, loadable by Jaeger/Tempo-style tooling.
//!
//! And one reads it *live*: every recorder owns an [`EventBus`]
//! ([`Recorder::bus`]) publishing schema-versioned [`TelemetryEvent`]s
//! for span start/end, counter deltas, phase transitions
//! ([`Recorder::phase_span`]) and job progress while a run executes —
//! the feed behind `repro --progress` and the `repro serve` SSE stream.
//! Publishing costs one atomic load when nobody subscribes, and a slow
//! subscriber only ever loses its own oldest events (bounded ring,
//! drop-oldest), never blocks the hot path. Concurrent runs are told
//! apart by a run id label ([`RunScope`], [`next_run_id`]).
//!
//! # Global recorder
//!
//! Library crates (uarch, stats, cluster, core) instrument through the
//! free functions [`span`], [`counter_add`] and [`histogram_record`],
//! which forward to the process-wide recorder installed with [`install`]
//! — and cost one `RwLock` read when none is installed. Components that
//! own their telemetry (the engine) hold an `Arc<Recorder>` directly.
//!
//! # Example
//!
//! ```
//! use horizon_telemetry::Recorder;
//! use std::sync::Arc;
//!
//! let recorder = Arc::new(Recorder::new());
//! {
//!     let mut outer = recorder.span("pipeline");
//!     outer.record("experiment", "table5");
//!     let _inner = recorder.span("pca"); // nested under "pipeline"
//! }
//! recorder.counter_add("jobs", 3);
//! let snap = recorder.snapshot();
//! assert_eq!(snap.counter("jobs"), 3);
//! let pca = &snap.spans_named("pca")[0];
//! let pipeline = &snap.spans_named("pipeline")[0];
//! assert_eq!(pca.parent, Some(pipeline.id));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bus;
mod histogram;
mod jsonl;
mod otlp;
mod prometheus;
mod recorder;
mod snapshot;

pub use bus::{
    current_run_id, next_run_id, EventBus, EventKind, RunScope, Subscription, TelemetryEvent,
    DEFAULT_SUBSCRIBER_CAPACITY, EVENT_SCHEMA,
};
pub use histogram::Histogram;
pub use jsonl::{write_trace, write_trace_with_meta, TRACE_SCHEMA};
pub use otlp::write_otlp;
pub use prometheus::write_prometheus;
pub use recorder::{FieldValue, Recorder, Span, EVENTS_DROPPED_COUNTER};
pub use snapshot::{PhaseStat, SpanRecord, TelemetrySnapshot};

use std::sync::{Arc, RwLock};

static GLOBAL: RwLock<Option<Arc<Recorder>>> = RwLock::new(None);

/// Installs a process-wide recorder; all [`span`]/[`counter_add`]/
/// [`histogram_record`] calls route to it until [`clear`] replaces it.
pub fn install(recorder: Arc<Recorder>) {
    *GLOBAL.write().expect("telemetry lock") = Some(recorder);
}

/// Removes the installed recorder; global instrumentation becomes a no-op.
pub fn clear() {
    *GLOBAL.write().expect("telemetry lock") = None;
}

/// The currently installed recorder, if any.
pub fn installed() -> Option<Arc<Recorder>> {
    GLOBAL.read().expect("telemetry lock").clone()
}

/// Opens a span on the installed recorder (no-op guard when none is
/// installed or the recorder is disabled).
pub fn span(name: &'static str) -> Span {
    match installed() {
        Some(r) => r.span(name),
        None => Span::noop(),
    }
}

/// Opens a *phase* span on the installed recorder — like [`span`], but
/// also publishing `phase_enter`/`phase_exit` events on the live bus (see
/// [`Recorder::phase_span`]).
pub fn phase_span(name: &'static str) -> Span {
    match installed() {
        Some(r) => r.phase_span(name),
        None => Span::noop(),
    }
}

/// Adds to a counter on the installed recorder (no-op when none).
pub fn counter_add(name: &'static str, delta: u64) {
    if let Some(r) = installed() {
        r.counter_add(name, delta);
    }
}

/// Records a histogram sample on the installed recorder (no-op when none).
pub fn histogram_record(name: &'static str, value: u64) {
    if let Some(r) = installed() {
        r.histogram_record(name, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The global-install tests share one process-wide slot, so they run in
    // one test to avoid cross-test interference.
    #[test]
    fn global_install_routes_and_clear_disables() {
        let recorder = Arc::new(Recorder::new());
        install(Arc::clone(&recorder));
        {
            let _s = span("global.phase");
        }
        counter_add("global.count", 2);
        histogram_record("global.hist", 512);
        clear();
        // After clear, these must be silent no-ops.
        {
            let _s = span("global.phase");
        }
        counter_add("global.count", 40);

        let snap = recorder.snapshot();
        assert_eq!(snap.spans_named("global.phase").len(), 1);
        assert_eq!(snap.counter("global.count"), 2);
        assert_eq!(snap.histogram("global.hist").unwrap().count(), 1);
        assert!(installed().is_none());
    }
}
