//! SimPoint-style phase sampling for trace-driven simulation.
//!
//! Full-window fleet simulation is the cost center of every campaign: the
//! default window steps 360k instructions through up to seven machine
//! models per workload. Program behavior, however, is phased — long
//! stretches of a trace repeat the same kind mix, working set and branch
//! behavior. This crate exploits that the classic SimPoint way:
//!
//! 1. slice the measured window into fixed-size **intervals**,
//! 2. fingerprint each interval with a **behavior vector** (kind mix,
//!    hashed pc/branch-target working-set signature, load/store locality),
//! 3. **cluster** the vectors with deterministic k-means
//!    ([`horizon_cluster::kmeans`]),
//! 4. simulate only each cluster's **representative** interval, stitched
//!    in trace order through **one** persistent [`FleetSimulator`] state
//!    (cache/TLB state carries across the gaps; skipped branch outcomes
//!    still train the predictors — functional warming), and
//! 5. reconstruct full-window counters as `Σ weight_c × counters(rep_c)`.
//!
//! The result is approximate by design; its contract is a *measured* error
//! budget (see the `sampling_equivalence` harness and DESIGN.md §15), not
//! bit-exactness. Everything here is deterministic: the same trace and
//! config produce a bit-identical [`SimPointPlan`] and reconstruction on
//! every run, platform and thread count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use horizon_cluster::kmeans;
use horizon_trace::{Instruction, Kind, WorkloadProfile, CACHE_LINE_BYTES};
use horizon_uarch::{Counters, CpiStack, FleetSimulator, MachineConfig, TraceSegment};
use serde::{Deserialize, Serialize};

/// Sampling knobs: interval length and phase budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SimPointConfig {
    /// Instructions per fingerprinted interval (also caps the initial
    /// detailed warmup before the first slice).
    pub interval: u64,
    /// Maximum number of phases (k-means cluster budget). A short tail
    /// interval, when the window is not a multiple of `interval`, is always
    /// simulated exactly and may add one extra phase.
    pub max_phases: u64,
}

impl SimPointConfig {
    /// Default interval length: 30 intervals across the default 300k
    /// window — fine enough to resolve phases, long enough that each
    /// slice's counters are not dominated by rare-event noise.
    pub const DEFAULT_INTERVAL: u64 = 10_000;
    /// Default phase budget: with [`Self::DEFAULT_INTERVAL`] this bounds
    /// detailed simulation at `(1 + 6) × 10k = 70k` instructions per
    /// (workload, fleet) pair against the default 360k full window — a
    /// ≥5× reduction.
    pub const DEFAULT_MAX_PHASES: u64 = 6;
}

impl Default for SimPointConfig {
    fn default() -> Self {
        SimPointConfig {
            interval: Self::DEFAULT_INTERVAL,
            max_phases: Self::DEFAULT_MAX_PHASES,
        }
    }
}

/// One selected phase: a representative interval plus its cluster weight.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimPointPhase {
    /// Number of intervals this representative stands for.
    pub weight: u64,
    /// Start of the representative interval, in instructions from the
    /// beginning of the *measured* window (campaign warmup excluded).
    pub start: u64,
    /// End (exclusive) of the representative interval.
    pub end: u64,
}

/// A deterministic sampling plan for one `(profile, seed, window)` trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimPointPlan {
    /// Interval length the plan was built with.
    pub interval: u64,
    /// Measured-window instructions the plan reconstructs.
    pub instructions: u64,
    /// Number of fingerprinted intervals (including any short tail).
    pub intervals: u64,
    /// Selected phases, sorted by `start` ascending.
    pub phases: Vec<SimPointPhase>,
}

impl SimPointPlan {
    /// Total instructions the reconstruction accounts for:
    /// `Σ weight × (end − start)`. Always equals [`Self::instructions`].
    pub fn weighted_instructions(&self) -> u64 {
        self.phases
            .iter()
            .map(|p| p.weight * (p.end - p.start))
            .sum()
    }

    /// Instructions whose counters are **measured** — the representative
    /// intervals themselves, `Σ (end − start)`. This is the detailed
    /// simulation footprint that scales with a simulator's per-instruction
    /// cost, and the denominator of the sampling speedup.
    pub fn sampled_instructions(&self) -> u64 {
        self.phases.iter().map(|p| p.end - p.start).sum()
    }

    /// Instructions consumed for state warming only, when this plan runs
    /// with the given campaign `warmup`: the warm-bubble before each slice
    /// (full-state, detailed but unmeasured) plus the functionally warmed
    /// gaps (branch outcomes and TLB probes only). Together with
    /// [`Self::sampled_instructions`] this covers the stream up to the
    /// last phase's end.
    pub fn warmed_instructions(&self, warmup: u64) -> u64 {
        let Some(last) = self.phases.last() else {
            return 0;
        };
        (warmup + last.end).saturating_sub(self.sampled_instructions())
    }
}

/// Behavior-vector dimensions: 6 kind fractions, taken/kernel fractions,
/// 2 locality fractions, 16 hashed pc-line buckets, 8 hashed data-line
/// buckets.
const PC_BUCKETS: usize = 16;
const DATA_BUCKETS: usize = 8;
const DIMS: usize = 10 + PC_BUCKETS + DATA_BUCKETS;

/// splitmix64 finalizer — spreads line addresses across histogram buckets.
fn bucket(x: u64, buckets: usize) -> usize {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    ((z ^ (z >> 31)) % buckets as u64) as usize
}

/// Per-interval feature accumulator; interval-local so fingerprints do not
/// depend on where interval boundaries fall relative to earlier intervals.
#[derive(Default)]
struct IntervalFeatures {
    len: u64,
    loads: u64,
    stores: u64,
    branches: u64,
    int_alu: u64,
    fp_alu: u64,
    simd: u64,
    taken: u64,
    kernel: u64,
    new_pc_lines: u64,
    data_line_reuse: u64,
    pc_hist: [u64; PC_BUCKETS],
    data_hist: [u64; DATA_BUCKETS],
    prev_pc_line: Option<u64>,
    prev_data_line: Option<u64>,
}

impl IntervalFeatures {
    fn note(&mut self, inst: &Instruction) {
        self.len += 1;
        let pc_line = inst.pc / CACHE_LINE_BYTES;
        if self.prev_pc_line != Some(pc_line) {
            self.new_pc_lines += 1;
        }
        self.prev_pc_line = Some(pc_line);
        self.pc_hist[bucket(pc_line, PC_BUCKETS)] += 1;
        if inst.kernel {
            self.kernel += 1;
        }
        match inst.kind {
            Kind::Load { addr } | Kind::Store { addr } => {
                if matches!(inst.kind, Kind::Load { .. }) {
                    self.loads += 1;
                } else {
                    self.stores += 1;
                }
                let line = addr / CACHE_LINE_BYTES;
                if self.prev_data_line == Some(line) {
                    self.data_line_reuse += 1;
                }
                self.prev_data_line = Some(line);
                self.data_hist[bucket(line, DATA_BUCKETS)] += 1;
            }
            Kind::Branch { target, taken } => {
                self.branches += 1;
                if taken {
                    self.taken += 1;
                }
                // Branch targets join the code working-set signature.
                self.pc_hist[bucket(target / CACHE_LINE_BYTES, PC_BUCKETS)] += 1;
            }
            Kind::IntAlu => self.int_alu += 1,
            Kind::FpAlu => self.fp_alu += 1,
            Kind::Simd => self.simd += 1,
        }
    }

    fn vector(&self) -> Vec<f64> {
        let n = self.len.max(1) as f64;
        let mut v = Vec::with_capacity(DIMS);
        for count in [
            self.loads,
            self.stores,
            self.branches,
            self.int_alu,
            self.fp_alu,
            self.simd,
            self.taken,
            self.kernel,
            self.new_pc_lines,
            self.data_line_reuse,
        ] {
            v.push(count as f64 / n);
        }
        // pc_hist also counts branch targets, so normalize by its own mass.
        let pc_mass = self.pc_hist.iter().sum::<u64>().max(1) as f64;
        v.extend(self.pc_hist.iter().map(|&c| c as f64 / pc_mass));
        v.extend(self.data_hist.iter().map(|&c| c as f64 / n));
        v
    }
}

/// Builds a sampling plan by fingerprinting and clustering the measured
/// window of `source`.
///
/// `source` must reproduce the stream `TraceGenerator::new(profile, seed)`
/// would expand (a packed-trace replay qualifies); the first `warmup`
/// items are skipped and the next `instructions` items are fingerprinted.
/// A source that ends early simply yields a plan over the instructions it
/// produced.
///
/// When the window holds no more than `config.max_phases` full intervals,
/// every interval becomes its own weight-1 phase (exact coverage — no
/// savings, no clustering error).
pub fn plan(
    config: &SimPointConfig,
    warmup: u64,
    instructions: u64,
    mut source: impl Iterator<Item = Instruction>,
) -> SimPointPlan {
    let interval = config.interval.max(1);
    let max_phases = config.max_phases.max(1) as usize;
    if warmup > 0 {
        source.nth(warmup as usize - 1);
    }

    let mut vectors: Vec<Vec<f64>> = Vec::new();
    let mut lengths: Vec<u64> = Vec::new();
    let mut current = IntervalFeatures::default();
    let mut seen = 0u64;
    for inst in source.take(instructions as usize) {
        current.note(&inst);
        seen += 1;
        if current.len == interval {
            vectors.push(current.vector());
            lengths.push(current.len);
            current = IntervalFeatures::default();
        }
    }
    if current.len > 0 {
        vectors.push(current.vector());
        lengths.push(current.len);
    }

    let has_tail = lengths.last().is_some_and(|&l| l < interval);
    let full = lengths.len() - usize::from(has_tail);

    let mut phases: Vec<SimPointPhase> = Vec::new();
    if full <= max_phases {
        for i in 0..full {
            phases.push(SimPointPhase {
                weight: 1,
                start: i as u64 * interval,
                end: (i as u64 + 1) * interval,
            });
        }
    } else {
        let km = kmeans(&vectors[..full], max_phases).expect("non-empty intervals");
        for members in km.clusters() {
            if members.is_empty() {
                continue;
            }
            // Representative = the cluster's *median-position* member, not
            // its feature-space medoid. The fingerprint vector captures
            // program behavior, which for many workloads is stationary —
            // cluster membership is then near-arbitrary and a medoid can
            // land anywhere in the window. Microarchitectural state keeps
            // drifting long after warmup (predictors still training,
            // large caches still filling), so an early-window medoid
            // would weight its whole cluster with inflated transient
            // counts. Members are index-sorted (kmeans assigns in order),
            // so the median member sits mid-drift and the bias averages
            // out; for genuinely phased workloads the median member still
            // belongs to the cluster, so representativeness is kept.
            let rep = members[members.len() / 2] as u64;
            phases.push(SimPointPhase {
                weight: members.len() as u64,
                start: rep * interval,
                end: (rep + 1) * interval,
            });
        }
    }
    if has_tail {
        // The odd-sized tail cannot stand for (or be stood for by) a
        // full-length interval; always simulate it exactly.
        phases.push(SimPointPhase {
            weight: 1,
            start: full as u64 * interval,
            end: seen,
        });
    }
    phases.sort_by_key(|p| p.start);

    SimPointPlan {
        interval,
        instructions: seen,
        intervals: lengths.len() as u64,
        phases,
    }
}

/// Simulates a plan's representative slices **stitched** through one
/// persistent fleet state and reconstructs full-window counters, one
/// [`Counters`] per machine (same order as `machines`).
///
/// `source` must reproduce the `(profile, seed)` stream from position 0;
/// it is consumed in a single pass. Each slice is preceded by a
/// **warm-bubble** of up to one interval of full-state warming (detailed
/// simulation with measurement disabled), re-establishing the recent
/// cache working set before counters are read; the rest of every skipped
/// stretch runs light functional warming (branch outcomes and TLB probes
/// only), so predictors and TLBs stay exactly on the full run's training
/// trajectory while cache state beyond the bubble carries across the gap
/// (the quasi-stationarity approximation). The weighted sum
/// `Σ weight × counters(rep)` is then taken field-wise and the CPI stack
/// recomputed from the reconstructed totals.
pub fn simulate(
    simpoint_plan: &SimPointPlan,
    profile: &WorkloadProfile,
    machines: &[MachineConfig],
    warmup: u64,
    source: impl Iterator<Item = Instruction>,
) -> Vec<Counters> {
    let mut segments = Vec::with_capacity(simpoint_plan.phases.len());
    let mut pos = 0u64;
    for phase in &simpoint_plan.phases {
        let abs_start = warmup + phase.start;
        let gap = abs_start - pos;
        let bubble = simpoint_plan.interval.min(gap);
        segments.push(TraceSegment {
            skip: gap - bubble,
            warmup: bubble,
            measure: phase.end - phase.start,
        });
        pos = warmup + phase.end;
    }
    let per_phase = FleetSimulator::new(machines)
        .with_functional_warming(true)
        .run_trace_segments(profile, &segments, source);

    let mut acc = vec![Counters::default(); machines.len()];
    for (counters, phase) in per_phase.iter().zip(&simpoint_plan.phases) {
        for (a, c) in acc.iter_mut().zip(counters) {
            add_weighted(a, c, phase.weight);
        }
    }
    for (a, machine) in acc.iter_mut().zip(machines) {
        a.cpi_stack = CpiStack::compute(a, machine);
    }
    acc
}

/// Plans and simulates in one call — the campaign entry point — and emits
/// `simpoint.*` telemetry (runs, intervals, phases, detailed vs. warmed
/// vs. skipped instructions) through the process-wide recorder.
///
/// `mk_source` is invoked twice — once for the fingerprint pass and once
/// for the stitched simulation — and must return the same stream from
/// position 0 both times (re-open a trace replay, or re-seed a generator).
pub fn sample_fleet<I: Iterator<Item = Instruction>>(
    config: &SimPointConfig,
    profile: &WorkloadProfile,
    machines: &[MachineConfig],
    warmup: u64,
    instructions: u64,
    mut mk_source: impl FnMut() -> I,
) -> (SimPointPlan, Vec<Counters>) {
    let mut span = horizon_telemetry::span("simpoint.sample");
    span.record("workload", profile.name());
    let simpoint_plan = plan(config, warmup, instructions, mk_source());
    let counters = simulate(&simpoint_plan, profile, machines, warmup, mk_source());
    let sampled = simpoint_plan.sampled_instructions();
    let full_window = warmup + simpoint_plan.instructions;
    horizon_telemetry::counter_add("simpoint.runs", 1);
    horizon_telemetry::counter_add("simpoint.intervals", simpoint_plan.intervals);
    horizon_telemetry::counter_add("simpoint.phases", simpoint_plan.phases.len() as u64);
    horizon_telemetry::counter_add("simpoint.sampled_instructions", sampled);
    horizon_telemetry::counter_add(
        "simpoint.warmed_instructions",
        simpoint_plan.warmed_instructions(warmup),
    );
    horizon_telemetry::counter_add(
        "simpoint.skipped_instructions",
        full_window.saturating_sub(sampled),
    );
    (simpoint_plan, counters)
}

/// Field-wise `acc += weight × c` over the raw event counts; the f64
/// trace metadata (dependency intensity, frequency) is identical across
/// slices and copied through.
fn add_weighted(acc: &mut Counters, c: &Counters, weight: u64) {
    acc.instructions += weight * c.instructions;
    acc.loads += weight * c.loads;
    acc.stores += weight * c.stores;
    acc.branches += weight * c.branches;
    acc.taken_branches += weight * c.taken_branches;
    acc.mispredicts += weight * c.mispredicts;
    acc.fp_ops += weight * c.fp_ops;
    acc.simd_ops += weight * c.simd_ops;
    acc.kernel_instructions += weight * c.kernel_instructions;
    acc.l1i_accesses += weight * c.l1i_accesses;
    acc.l1i_misses += weight * c.l1i_misses;
    acc.l1d_accesses += weight * c.l1d_accesses;
    acc.l1d_misses += weight * c.l1d_misses;
    acc.l2i_accesses += weight * c.l2i_accesses;
    acc.l2i_misses += weight * c.l2i_misses;
    acc.l2d_accesses += weight * c.l2d_accesses;
    acc.l2d_misses += weight * c.l2d_misses;
    acc.l3_accesses += weight * c.l3_accesses;
    acc.l3_misses += weight * c.l3_misses;
    acc.memory_accesses += weight * c.memory_accesses;
    acc.itlb_misses += weight * c.itlb_misses;
    acc.dtlb_misses += weight * c.dtlb_misses;
    acc.page_walks_instruction += weight * c.page_walks_instruction;
    acc.page_walks_data += weight * c.page_walks_data;
    acc.dependency_intensity = c.dependency_intensity;
    acc.freq_ghz = c.freq_ghz;
}

#[cfg(test)]
mod tests {
    use super::*;
    use horizon_trace::TraceGenerator;
    use horizon_workloads::cpu2017;

    fn profile() -> WorkloadProfile {
        cpu2017::speed_int()[0].profile().clone()
    }

    fn generator(p: &WorkloadProfile) -> TraceGenerator {
        TraceGenerator::new(p, 42)
    }

    #[test]
    fn weights_cover_the_window_exactly() {
        let p = profile();
        let cfg = SimPointConfig {
            interval: 1_000,
            max_phases: 4,
        };
        let sp = plan(&cfg, 2_000, 23_500, generator(&p));
        assert_eq!(sp.instructions, 23_500);
        assert_eq!(sp.intervals, 24);
        assert_eq!(sp.weighted_instructions(), 23_500);
        // Cluster budget plus the forced tail phase.
        assert!(sp.phases.len() <= 5, "{} phases", sp.phases.len());
        let tail = sp.phases.last().unwrap();
        assert_eq!((tail.start, tail.end, tail.weight), (23_000, 23_500, 1));
    }

    #[test]
    fn plan_is_deterministic_and_sorted() {
        let p = profile();
        let cfg = SimPointConfig::default();
        let a = plan(&cfg, 5_000, 40_000, generator(&p));
        let b = plan(&cfg, 5_000, 40_000, generator(&p));
        assert_eq!(a, b);
        assert!(a.phases.windows(2).all(|w| w[0].start < w[1].start));
    }

    #[test]
    fn small_windows_get_exact_coverage() {
        let p = profile();
        let cfg = SimPointConfig {
            interval: 10_000,
            max_phases: 6,
        };
        let sp = plan(&cfg, 0, 30_000, generator(&p));
        assert_eq!(sp.phases.len(), 3);
        assert!(sp.phases.iter().all(|ph| ph.weight == 1));
    }

    #[test]
    fn reconstruction_tracks_the_exact_run() {
        let p = profile();
        let machines = [MachineConfig::skylake_i7_6700()];
        let (warmup, instructions) = (10_000u64, 60_000u64);
        let exact = FleetSimulator::new(&machines)
            .with_warmup(warmup)
            .run(&p, instructions, 42);
        let cfg = SimPointConfig {
            interval: 5_000,
            max_phases: 6,
        };
        let (sp, sampled) =
            sample_fleet(&cfg, &p, &machines, warmup, instructions, || generator(&p));
        assert_eq!(sampled[0].instructions, instructions);
        assert!(sp.sampled_instructions() < warmup + instructions);
        let exact_cpi = exact[0].cpi();
        let sampled_cpi = sampled[0].cpi();
        let err = (sampled_cpi - exact_cpi).abs() / exact_cpi;
        assert!(
            err < 0.10,
            "sampled CPI {sampled_cpi:.4} vs exact {exact_cpi:.4} ({:.2}% off)",
            err * 100.0
        );
    }

    #[test]
    fn simulate_is_deterministic() {
        let p = profile();
        let machines = [MachineConfig::skylake_i7_6700(), MachineConfig::sparc_t4()];
        let cfg = SimPointConfig {
            interval: 2_000,
            max_phases: 4,
        };
        let sp = plan(&cfg, 3_000, 20_000, generator(&p));
        let a = simulate(&sp, &p, &machines, 3_000, generator(&p));
        let b = simulate(&sp, &p, &machines, 3_000, generator(&p));
        assert_eq!(a, b);
        assert_eq!(a.len(), 2);
        assert_ne!(a[0].l1d_misses, a[1].l1d_misses);
    }

    #[test]
    fn empty_window_yields_empty_plan() {
        let p = profile();
        let cfg = SimPointConfig::default();
        let sp = plan(&cfg, 0, 0, generator(&p));
        assert_eq!(sp.instructions, 0);
        assert!(sp.phases.is_empty());
        let machines = [MachineConfig::skylake_i7_6700()];
        let counters = simulate(&sp, &p, &machines, 0, generator(&p));
        assert_eq!(counters[0].instructions, 0);
    }

    #[test]
    fn replay_and_generator_agree_on_the_plan() {
        // A plan built from any faithful reproduction of the stream must be
        // identical — here simulated by collecting the generator output.
        let p = profile();
        let cfg = SimPointConfig {
            interval: 1_000,
            max_phases: 3,
        };
        let collected: Vec<Instruction> = generator(&p).take(15_000).collect();
        let a = plan(&cfg, 2_000, 13_000, generator(&p));
        let b = plan(&cfg, 2_000, 13_000, collected.into_iter());
        assert_eq!(a, b);
    }
}
