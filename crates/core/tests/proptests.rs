//! Property-based tests for the reporting layer and metric extraction:
//! arbitrary inputs must never panic and must preserve shape invariants.

use horizon_core::campaign::Measurement;
use horizon_core::metrics::Metric;
use horizon_core::report::{ascii_scatter, format_table};
use horizon_uarch::{Counters, CpiStack, PowerReport};
use proptest::prelude::*;

/// Generates counters that satisfy the invariants real campaigns produce:
/// instruction-class counts partition the instruction total, misses never
/// exceed accesses, and each level's misses feed the next level's accesses.
fn arbitrary_counters() -> impl Strategy<Value = Counters> {
    (
        1_000u64..1_000_000,
        0.0..0.35f64, // load fraction
        0.0..0.15f64, // store fraction
        0.0..0.25f64, // branch fraction
        0.0..0.15f64, // fp fraction
        0.0..1.0f64,  // L1 miss ratio
        0.0..1.0f64,  // L2 miss ratio
        0.0..1.0f64,  // L3 miss ratio
        0u64..20_000, // TLB walk scale
    )
        .prop_map(|(instructions, fl, fs, fb, ff, m1, m2, m3, walks)| {
            let frac = |f: f64| (instructions as f64 * f) as u64;
            let (loads, stores, branches, fp_ops) = (frac(fl), frac(fs), frac(fb), frac(ff));
            let l1d_accesses = loads + stores;
            let l1d_misses = (l1d_accesses as f64 * m1) as u64;
            let l2d_misses = (l1d_misses as f64 * m2) as u64;
            let l3_accesses = l2d_misses + (instructions as f64 * m1 * m2 / 64.0) as u64;
            let l3_misses = (l3_accesses as f64 * m3) as u64;
            Counters {
                instructions,
                loads,
                stores,
                branches,
                taken_branches: branches / 2,
                mispredicts: branches / 20,
                fp_ops,
                simd_ops: fp_ops / 4,
                kernel_instructions: instructions / 50,
                l1i_accesses: instructions,
                l1i_misses: (instructions as f64 * m1 / 32.0) as u64,
                l1d_accesses,
                l1d_misses,
                l2i_accesses: (instructions as f64 * m1 / 32.0) as u64,
                l2i_misses: (instructions as f64 * m1 * m2 / 64.0) as u64,
                l2d_accesses: l1d_misses,
                l2d_misses,
                l3_accesses,
                l3_misses,
                memory_accesses: l3_misses,
                itlb_misses: walks / 2,
                dtlb_misses: walks,
                page_walks_instruction: walks / 4,
                page_walks_data: walks / 2,
                dependency_intensity: 0.4,
                freq_ghz: 2.5,
                cpi_stack: CpiStack {
                    base: 0.25,
                    frontend: 0.1,
                    bad_speculation: 0.05,
                    memory: 0.2,
                    core: 0.1,
                },
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every Table III metric extracts a finite, non-negative value from
    /// any consistent counter set.
    #[test]
    fn metric_extraction_is_total(counters in arbitrary_counters()) {
        let m = Measurement {
            counters,
            power: PowerReport {
                core_watts: 10.0,
                llc_watts: 2.0,
                dram_watts: 3.0,
            },
        };
        for metric in Metric::table_iii().iter().chain(Metric::power_set().iter()) {
            let v = metric.extract(&m);
            prop_assert!(v.is_finite(), "{}: {v}", metric.label());
            prop_assert!(v >= 0.0, "{}: {v}", metric.label());
        }
    }

    /// format_table renders any cell contents with consistent geometry.
    #[test]
    fn format_table_never_panics(
        rows in proptest::collection::vec(
            proptest::collection::vec("[a-zA-Z0-9 .%-]{0,24}", 0..5),
            0..12,
        )
    ) {
        let table = format_table(&["col-a", "col-b", "col-c"], &rows);
        let lines: Vec<&str> = table.lines().collect();
        prop_assert_eq!(lines.len(), 2 + rows.len());
        // Separator is all dashes and at least as wide as the header.
        prop_assert!(lines[1].chars().all(|c| c == '-'));
        prop_assert!(lines[1].len() >= lines[0].trim_end().len());
    }

    /// The scatter renderer accepts any finite point cloud.
    #[test]
    fn ascii_scatter_never_panics(
        pts in proptest::collection::vec(
            (-1e6..1e6f64, -1e6..1e6f64),
            1..40,
        )
    ) {
        let points: Vec<(char, String, f64, f64)> = pts
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| (char::from(b'a' + (i % 26) as u8), format!("p{i}"), x, y))
            .collect();
        let art = ascii_scatter(&points, 40, 12, "x", "y");
        // Grid rows plus axis plus legend lines.
        prop_assert!(art.lines().count() >= 12);
        // Every distinct marker appears somewhere.
        let markers: std::collections::HashSet<char> =
            points.iter().map(|p| p.0).collect();
        for m in markers {
            prop_assert!(art.contains(m), "marker {m} missing");
        }
    }
}

mod report_v1_props {
    use horizon_core::report_v1::{
        ErrorStatV1, ReportTableV1, ReportV1, SubsetV1, REPORT_SCHEMA_VERSION,
    };
    use proptest::prelude::*;

    /// Arbitrary report text cells: letters, digits, punctuation, quotes,
    /// a backslash, accented characters and a literal newline — the JSON
    /// layer must escape all of them correctly.
    const WILD: &str = "[a-zA-Z0-9 ._%()\"\\éñ\n-]{0,12}";

    fn arbitrary_report() -> impl Strategy<Value = ReportV1> {
        let table = (
            WILD,
            proptest::collection::vec(WILD, 0..4),
            proptest::collection::vec(proptest::collection::vec(WILD, 0..4), 0..3),
        )
            .prop_map(|(section, columns, rows)| ReportTableV1 {
                section,
                columns,
                rows,
            });
        let subset = (WILD, proptest::collection::vec(WILD, 0..4))
            .prop_map(|(context, members)| SubsetV1 { context, members });
        let error =
            (WILD, -1e9..1e9f64, -1e9..1e9f64).prop_map(|(context, average_pct, max_pct)| {
                ErrorStatV1 {
                    context,
                    average_pct,
                    max_pct,
                }
            });
        (
            WILD,
            WILD,
            proptest::collection::vec(table, 0..3),
            proptest::collection::vec(subset, 0..3),
            proptest::collection::vec(error, 0..3),
            proptest::collection::vec(WILD, 0..4),
        )
            .prop_map(
                |(experiment, title, tables, subsets, errors, notes)| ReportV1 {
                    schema_version: REPORT_SCHEMA_VERSION,
                    experiment,
                    title,
                    tables,
                    subsets,
                    errors,
                    notes,
                },
            )
    }

    proptest! {
        /// serialize → deserialize → identical report, for arbitrary
        /// content including quotes, backslashes and newlines.
        #[test]
        fn report_v1_json_round_trips(report in arbitrary_report()) {
            let json = serde_json::to_string(&report).unwrap();
            let back = ReportV1::from_json(&json).unwrap();
            prop_assert_eq!(back, report);
        }

        /// `from_text` accepts arbitrary text without panicking and always
        /// produces a current-schema report whose rows match their table's
        /// column count.
        #[test]
        fn from_text_never_panics_and_keeps_row_shape(text in "[a-zA-Z0-9 ._%()\n-]{0,300}") {
            let r = ReportV1::from_text("exp", &text);
            prop_assert_eq!(r.schema_version, REPORT_SCHEMA_VERSION);
            prop_assert!(r.validate().is_ok());
            for table in &r.tables {
                for row in &table.rows {
                    prop_assert_eq!(row.len(), table.columns.len());
                }
            }
        }

        /// Tables rendered by `format_table` are recovered cell-for-cell.
        #[test]
        fn from_text_recovers_rendered_tables(
            (columns, rows) in (1..5usize).prop_flat_map(|cols| (
                proptest::collection::vec("[a-zA-Z0-9_.%]{1,7}", cols..=cols),
                proptest::collection::vec(
                    proptest::collection::vec("[a-zA-Z0-9_.%]{1,7}", cols..=cols),
                    1..4,
                ),
            ))
        ) {
            let headers: Vec<&str> = columns.iter().map(String::as_str).collect();
            let text = format!(
                "Sample title\n\n{}",
                horizon_core::report::format_table(&headers, &rows)
            );
            let r = ReportV1::from_text("exp", &text);
            prop_assert_eq!(r.tables.len(), 1);
            prop_assert_eq!(&r.tables[0].columns, &columns);
            prop_assert_eq!(&r.tables[0].rows, &rows);
            prop_assert_eq!(&r.tables[0].section, "Sample title");
        }
    }
}
