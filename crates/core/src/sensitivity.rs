//! Sensitivity classification (§V-G, Table IX).
//!
//! A benchmark is *sensitive* to a machine characteristic (branch
//! predictor, L1D geometry, D-TLB) when its rank by the corresponding
//! metric moves a lot from machine to machine; insensitive benchmarks hold
//! their rank everywhere ("they perform similarly poor across the different
//! machines", as the paper notes for leela).

use horizon_stats::{rank_spread, ranks};
use serde::{Deserialize, Serialize};

use crate::campaign::CampaignResult;
use crate::metrics::Metric;
use crate::CoreError;

/// Sensitivity class of one benchmark for one characteristic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SensitivityClass {
    /// Rank barely moves across machines.
    Low,
    /// Rank moves moderately.
    Medium,
    /// Rank swings widely across machines.
    High,
}

impl std::fmt::Display for SensitivityClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SensitivityClass::Low => "Low",
            SensitivityClass::Medium => "Medium",
            SensitivityClass::High => "High",
        })
    }
}

/// One benchmark's sensitivity verdict.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sensitivity {
    /// Benchmark name.
    pub benchmark: String,
    /// Rank spread (max rank − min rank) across machines.
    pub rank_spread: f64,
    /// Symmetric relative range of the metric across machines:
    /// `(max − min) / (max + min)`, in `[0, 1)`.
    pub relative_range: f64,
    /// The classification.
    pub class: SensitivityClass,
}

/// Classification thresholds as fractions of the maximum possible spread.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SensitivityThresholds {
    /// Spread fraction at or above which a benchmark is High.
    pub high: f64,
    /// Spread fraction at or above which a benchmark is Medium.
    pub medium: f64,
}

impl Default for SensitivityThresholds {
    fn default() -> Self {
        SensitivityThresholds {
            high: 0.5,
            medium: 0.25,
        }
    }
}

/// Classifies every workload's cross-machine sensitivity to `metric`.
///
/// The paper uses rank differences across machines as the indicator; with a
/// handful of machines ranks saturate at the extremes (a benchmark that is
/// worst *everywhere* never moves rank however much its miss rate changes),
/// so the classification combines the rank-spread fraction with the
/// symmetric relative range of the metric value, taking the larger. Both
/// are reported.
///
/// # Errors
///
/// Returns [`CoreError::InvalidArgument`] for campaigns with fewer than two
/// machines or two workloads; propagates rank failures.
///
/// # Example
///
/// ```no_run
/// use horizon_core::campaign::Campaign;
/// use horizon_core::metrics::Metric;
/// use horizon_core::sensitivity::{classify_sensitivity, SensitivityThresholds};
/// use horizon_uarch::MachineConfig;
/// use horizon_workloads::cpu2017;
///
/// let result = Campaign::default()
///     .measure(&cpu2017::all(), &MachineConfig::table_iv_machines());
/// let classes = classify_sensitivity(
///     &result,
///     Metric::L1DMpki,
///     SensitivityThresholds::default(),
/// )?;
/// for s in classes {
///     println!("{}: {}", s.benchmark, s.class);
/// }
/// # Ok::<(), horizon_core::CoreError>(())
/// ```
pub fn classify_sensitivity(
    result: &CampaignResult,
    metric: Metric,
    thresholds: SensitivityThresholds,
) -> Result<Vec<Sensitivity>, CoreError> {
    let n = result.workloads().len();
    let machines = result.machines().len();
    if n < 2 || machines < 2 {
        return Err(CoreError::InvalidArgument {
            reason: "sensitivity needs ≥2 workloads and ≥2 machines".into(),
        });
    }
    let values: Vec<Vec<f64>> = (0..machines)
        .map(|m| (0..n).map(|w| metric.extract(result.at(w, m))).collect())
        .collect();
    let rankings: Vec<Vec<f64>> = values.iter().map(|v| ranks(v)).collect();
    let spreads = rank_spread(&rankings)?;
    let max_spread = (n - 1) as f64;
    // A benchmark that barely exercises the metric anywhere cannot be
    // sensitive to it, however large its *relative* variation: floor the
    // classification at a small fraction of the strongest exerciser.
    let mean_of = |w: usize| -> f64 { values.iter().map(|v| v[w]).sum::<f64>() / machines as f64 };
    let strongest = (0..n).map(mean_of).fold(0.0f64, f64::max);
    let floor = strongest * 0.05;
    Ok(result
        .workloads()
        .iter()
        .enumerate()
        .zip(spreads)
        .map(|((w, name), spread)| {
            let per_machine: Vec<f64> = values.iter().map(|v| v[w]).collect();
            let max = per_machine
                .iter()
                .cloned()
                .fold(f64::NEG_INFINITY, f64::max);
            let min = per_machine.iter().cloned().fold(f64::INFINITY, f64::min);
            let relative_range = if max + min > 0.0 {
                (max - min) / (max + min)
            } else {
                0.0
            };
            let frac = if mean_of(w) < floor {
                0.0
            } else {
                (spread / max_spread).max(relative_range)
            };
            let class = if frac >= thresholds.high {
                SensitivityClass::High
            } else if frac >= thresholds.medium {
                SensitivityClass::Medium
            } else {
                SensitivityClass::Low
            };
            Sensitivity {
                benchmark: name.clone(),
                rank_spread: spread,
                relative_range,
                class,
            }
        })
        .collect())
}

/// The benchmarks in a given class, preserving campaign order.
pub fn in_class(sensitivities: &[Sensitivity], class: SensitivityClass) -> Vec<&str> {
    sensitivities
        .iter()
        .filter(|s| s.class == class)
        .map(|s| s.benchmark.as_str())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::Campaign;
    use horizon_uarch::MachineConfig;
    use horizon_workloads::cpu2017;

    fn campaign() -> CampaignResult {
        // Rank over both rate sub-suites: ranks need enough peers to move.
        let mut benchmarks = cpu2017::rate_int();
        benchmarks.extend(cpu2017::rate_fp());
        // Four machines, as in §V-G.
        Campaign::quick().measure(
            &benchmarks,
            &[
                MachineConfig::skylake_i7_6700(),
                MachineConfig::core2_e5405(),
                MachineConfig::sparc_iv_plus_v490(),
                MachineConfig::opteron_2435(),
            ],
        )
    }

    #[test]
    fn classifies_every_workload() {
        let r = campaign();
        let s =
            classify_sensitivity(&r, Metric::L1DMpki, SensitivityThresholds::default()).unwrap();
        assert_eq!(s.len(), r.workloads().len());
        let high = in_class(&s, SensitivityClass::High);
        let medium = in_class(&s, SensitivityClass::Medium);
        let low = in_class(&s, SensitivityClass::Low);
        assert_eq!(high.len() + medium.len() + low.len(), s.len());
    }

    #[test]
    fn fotonik_is_l1d_sensitive() {
        // Table IX: 549.fotonik3d_r is in the High class for L1 D-cache —
        // its wide-stride footprint fits 64 KiB L1s but not 32 KiB ones.
        let r = campaign();
        let s =
            classify_sensitivity(&r, Metric::L1DMpki, SensitivityThresholds::default()).unwrap();
        let fotonik = s.iter().find(|x| x.benchmark == "549.fotonik3d_r").unwrap();
        assert_ne!(fotonik.class, SensitivityClass::Low, "{fotonik:?}");
    }

    #[test]
    fn spread_is_bounded() {
        let r = campaign();
        let s =
            classify_sensitivity(&r, Metric::BranchMpki, SensitivityThresholds::default()).unwrap();
        let max = (r.workloads().len() - 1) as f64;
        for x in &s {
            assert!(x.rank_spread >= 0.0 && x.rank_spread <= max);
        }
    }

    #[test]
    fn needs_two_machines() {
        let r = Campaign::quick().measure(
            &cpu2017::rate_fp()[..3],
            &[MachineConfig::skylake_i7_6700()],
        );
        assert!(
            classify_sensitivity(&r, Metric::L1DMpki, SensitivityThresholds::default()).is_err()
        );
    }
}
