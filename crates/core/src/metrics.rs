//! The Table III metric set and feature-matrix assembly.
//!
//! §III: "we measure 20 performance-related metrics for each benchmark on
//! every machine, leading to a total of 140 metrics" — each
//! (metric, machine) pair is one feature column.

use horizon_stats::Matrix;
use serde::{Deserialize, Serialize};

use crate::campaign::{CampaignResult, Measurement};

/// One of the paper's program characteristics (Table III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Metric {
    /// L1 instruction-cache misses per kilo-instruction.
    L1IMpki,
    /// L1 data-cache misses per kilo-instruction.
    L1DMpki,
    /// Instruction-side L2 misses per kilo-instruction.
    L2IMpki,
    /// Data-side L2 misses per kilo-instruction.
    L2DMpki,
    /// Last-level-cache misses per kilo-instruction.
    L3Mpki,
    /// L1 I-TLB misses per million instructions.
    ItlbMpmi,
    /// L1 D-TLB misses per million instructions.
    DtlbMpmi,
    /// Last-level TLB misses (page walks) per million instructions.
    LastLevelTlbMpmi,
    /// Page walks per million instructions (instruction + data).
    PageWalksPmi,
    /// Branch mispredictions per kilo-instruction.
    BranchMpki,
    /// Taken branches per kilo-instruction.
    BranchTakenPki,
    /// Percentage of kernel-mode instructions.
    PctKernel,
    /// Percentage of user-mode instructions.
    PctUser,
    /// Percentage of integer ALU instructions.
    PctInt,
    /// Percentage of scalar floating-point instructions.
    PctFp,
    /// Percentage of loads.
    PctLoads,
    /// Percentage of stores.
    PctStores,
    /// Percentage of branches.
    PctBranches,
    /// Percentage of SIMD instructions.
    PctSimd,
    /// Cycles per instruction (the top-line performance metric of Table I).
    Cpi,
    /// Core power in watts.
    CorePower,
    /// Last-level-cache power in watts.
    LlcPower,
    /// DRAM power in watts.
    MemoryPower,
}

impl Metric {
    /// The paper's full Table III metric set: 20 metrics (cache, TLB,
    /// branch and instruction-mix characteristics, plus CPI). Power metrics
    /// are separate, used only in the power study (§V-C).
    pub fn table_iii() -> Vec<Metric> {
        vec![
            Metric::L1IMpki,
            Metric::L1DMpki,
            Metric::L2IMpki,
            Metric::L2DMpki,
            Metric::L3Mpki,
            Metric::ItlbMpmi,
            Metric::DtlbMpmi,
            Metric::LastLevelTlbMpmi,
            Metric::PageWalksPmi,
            Metric::BranchMpki,
            Metric::BranchTakenPki,
            Metric::PctKernel,
            Metric::PctUser,
            Metric::PctInt,
            Metric::PctFp,
            Metric::PctLoads,
            Metric::PctStores,
            Metric::PctBranches,
            Metric::PctSimd,
            Metric::Cpi,
        ]
    }

    /// Branch-behavior metrics for the Figure 9 scatter plot.
    pub fn branch_set() -> Vec<Metric> {
        vec![
            Metric::BranchMpki,
            Metric::BranchTakenPki,
            Metric::PctBranches,
        ]
    }

    /// Data-cache metrics for the Figure 10 scatter plots.
    pub fn dcache_set() -> Vec<Metric> {
        vec![
            Metric::L1DMpki,
            Metric::L2DMpki,
            Metric::L3Mpki,
            Metric::DtlbMpmi,
        ]
    }

    /// Instruction-cache metrics for the Figure 10 scatter plots.
    pub fn icache_set() -> Vec<Metric> {
        vec![Metric::L1IMpki, Metric::L2IMpki, Metric::ItlbMpmi]
    }

    /// Power metrics for the Figure 12 study.
    pub fn power_set() -> Vec<Metric> {
        vec![Metric::CorePower, Metric::LlcPower, Metric::MemoryPower]
    }

    /// Extracts this metric's value from a measurement.
    pub fn extract(&self, m: &Measurement) -> f64 {
        let c = &m.counters;
        match self {
            Metric::L1IMpki => c.mpki(c.l1i_misses),
            Metric::L1DMpki => c.mpki(c.l1d_misses),
            Metric::L2IMpki => c.mpki(c.l2i_misses),
            Metric::L2DMpki => c.mpki(c.l2d_misses),
            Metric::L3Mpki => c.mpki(c.l3_misses),
            Metric::ItlbMpmi => c.mpmi(c.itlb_misses),
            Metric::DtlbMpmi => c.mpmi(c.dtlb_misses),
            Metric::LastLevelTlbMpmi => c.mpmi(c.page_walks_instruction + c.page_walks_data),
            Metric::PageWalksPmi => c.mpmi(c.page_walks_data),
            Metric::BranchMpki => c.branch_mpki(),
            Metric::BranchTakenPki => c.taken_branch_pki(),
            Metric::PctKernel => c.fraction(c.kernel_instructions) * 100.0,
            Metric::PctUser => (1.0 - c.fraction(c.kernel_instructions)) * 100.0,
            Metric::PctInt => {
                let non_int = c.loads + c.stores + c.branches + c.fp_ops + c.simd_ops;
                (1.0 - c.fraction(non_int)) * 100.0
            }
            Metric::PctFp => c.fraction(c.fp_ops) * 100.0,
            Metric::PctLoads => c.fraction(c.loads) * 100.0,
            Metric::PctStores => c.fraction(c.stores) * 100.0,
            Metric::PctBranches => c.fraction(c.branches) * 100.0,
            Metric::PctSimd => c.fraction(c.simd_ops) * 100.0,
            Metric::Cpi => c.cpi(),
            Metric::CorePower => m.power.core_watts,
            Metric::LlcPower => m.power.llc_watts,
            Metric::MemoryPower => m.power.dram_watts,
        }
    }

    /// Short label used in feature names and reports.
    pub fn label(&self) -> &'static str {
        match self {
            Metric::L1IMpki => "L1I_MPKI",
            Metric::L1DMpki => "L1D_MPKI",
            Metric::L2IMpki => "L2I_MPKI",
            Metric::L2DMpki => "L2D_MPKI",
            Metric::L3Mpki => "L3_MPKI",
            Metric::ItlbMpmi => "ITLB_MPMI",
            Metric::DtlbMpmi => "DTLB_MPMI",
            Metric::LastLevelTlbMpmi => "LLTLB_MPMI",
            Metric::PageWalksPmi => "WALKS_PMI",
            Metric::BranchMpki => "BR_MPKI",
            Metric::BranchTakenPki => "BR_TAKEN_PKI",
            Metric::PctKernel => "PCT_KERNEL",
            Metric::PctUser => "PCT_USER",
            Metric::PctInt => "PCT_INT",
            Metric::PctFp => "PCT_FP",
            Metric::PctLoads => "PCT_LOADS",
            Metric::PctStores => "PCT_STORES",
            Metric::PctBranches => "PCT_BRANCHES",
            Metric::PctSimd => "PCT_SIMD",
            Metric::Cpi => "CPI",
            Metric::CorePower => "CORE_W",
            Metric::LlcPower => "LLC_W",
            Metric::MemoryPower => "DRAM_W",
        }
    }
}

/// Builds the benchmark × (metric, machine) feature matrix of §III, plus
/// human-readable feature labels (`"L1D_MPKI@Intel Core i7-6700"`).
pub fn feature_matrix(result: &CampaignResult, metrics: &[Metric]) -> (Matrix, Vec<String>) {
    let n = result.workloads().len();
    let machines = result.machines().len();
    let p = metrics.len() * machines;
    let mut data = Vec::with_capacity(n * p);
    for w in 0..n {
        for metric in metrics {
            for m in 0..machines {
                data.push(metric.extract(result.at(w, m)));
            }
        }
    }
    let labels: Vec<String> = metrics
        .iter()
        .flat_map(|metric| {
            result
                .machines()
                .iter()
                .map(move |m| format!("{}@{}", metric.label(), m))
        })
        .collect();
    let matrix = Matrix::from_vec(n.max(1), p.max(1), data).expect("well-formed grid");
    (matrix, labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::Campaign;
    use horizon_uarch::MachineConfig;
    use horizon_workloads::cpu2017;

    #[test]
    fn table_iii_has_twenty_metrics() {
        let metrics = Metric::table_iii();
        assert_eq!(metrics.len(), 20);
    }

    #[test]
    fn metric_subsets_are_disjoint_sensible() {
        assert_eq!(Metric::branch_set().len(), 3);
        assert_eq!(Metric::power_set().len(), 3);
        assert!(Metric::dcache_set().contains(&Metric::L1DMpki));
        assert!(Metric::icache_set().contains(&Metric::L1IMpki));
    }

    #[test]
    fn feature_matrix_shape_matches_paper_arithmetic() {
        let benchmarks = &cpu2017::speed_int()[..2];
        let machines = MachineConfig::table_iv_machines();
        let r = Campaign::quick().measure(benchmarks, &machines);
        let (x, labels) = feature_matrix(&r, &Metric::table_iii());
        // 20 metrics × 7 machines = 140 features, as §III states.
        assert_eq!(x.cols(), 140);
        assert_eq!(labels.len(), 140);
        assert_eq!(x.rows(), 2);
        assert!(x.is_finite());
        assert!(labels[0].contains('@'));
    }

    #[test]
    fn percentages_are_consistent() {
        let benchmarks = &cpu2017::rate_fp()[..1];
        let r = Campaign::quick().measure(benchmarks, &[MachineConfig::skylake_i7_6700()]);
        let m = r.at(0, 0);
        let total = Metric::PctInt.extract(m)
            + Metric::PctFp.extract(m)
            + Metric::PctSimd.extract(m)
            + Metric::PctLoads.extract(m)
            + Metric::PctStores.extract(m)
            + Metric::PctBranches.extract(m);
        assert!((total - 100.0).abs() < 0.1, "{total}");
        assert!((Metric::PctKernel.extract(m) + Metric::PctUser.extract(m) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn power_metrics_positive() {
        let benchmarks = &cpu2017::rate_int()[..1];
        let r = Campaign::quick().measure(benchmarks, &[MachineConfig::skylake_i7_6700()]);
        let m = r.at(0, 0);
        for metric in Metric::power_set() {
            assert!(metric.extract(m) > 0.0);
        }
    }
}
