//! Plain-text table rendering shared by the reproduction binaries.

/// Renders a monospace table with a header row and `-` separator.
///
/// Columns are sized to the widest cell; all rows are padded/truncated to
/// the header's column count.
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (c, width) in widths.iter_mut().enumerate() {
            let cell = row.get(c).map(String::as_str).unwrap_or("");
            *width = (*width).max(cell.len());
        }
    }
    let mut out = String::new();
    let render_row = |cells: Vec<&str>, widths: &[usize]| -> String {
        let mut line = String::new();
        for (c, cell) in cells.iter().enumerate() {
            line.push_str(&format!("{:<w$}", cell, w = widths[c]));
            if c + 1 < cells.len() {
                line.push_str("  ");
            }
        }
        line.trim_end().to_string()
    };
    out.push_str(&render_row(headers.to_vec(), &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for row in rows {
        let cells: Vec<&str> = (0..cols)
            .map(|c| row.get(c).map(String::as_str).unwrap_or(""))
            .collect();
        out.push_str(&render_row(cells, &widths));
        out.push('\n');
    }
    out
}

/// Formats a float with a fixed number of decimals (report shorthand).
pub fn fmt(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

/// Renders labeled 2-D points as an ASCII scatter plot (the text analogue
/// of the paper's Figures 9–12). Each point is drawn with its marker
/// character; a legend mapping markers to labels follows the grid.
pub fn ascii_scatter(
    points: &[(char, String, f64, f64)],
    width: usize,
    height: usize,
    x_label: &str,
    y_label: &str,
) -> String {
    let width = width.max(16);
    let height = height.max(8);
    if points.is_empty() {
        return String::from("(no points)\n");
    }
    let min_max = |vals: &mut dyn Iterator<Item = f64>| -> (f64, f64) {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for v in vals {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        if (hi - lo).abs() < 1e-12 {
            (lo - 1.0, hi + 1.0)
        } else {
            (lo, hi)
        }
    };
    let (x_lo, x_hi) = min_max(&mut points.iter().map(|p| p.2));
    let (y_lo, y_hi) = min_max(&mut points.iter().map(|p| p.3));
    let mut grid = vec![vec![' '; width]; height];
    for &(marker, _, x, y) in points {
        let cx = ((x - x_lo) / (x_hi - x_lo) * (width - 1) as f64).round() as usize;
        let cy = ((y - y_lo) / (y_hi - y_lo) * (height - 1) as f64).round() as usize;
        let row = height - 1 - cy;
        // Later points do not overwrite earlier markers; show collisions.
        if grid[row][cx] == ' ' {
            grid[row][cx] = marker;
        } else if grid[row][cx] != marker {
            grid[row][cx] = '*';
        }
    }
    let mut out = String::new();
    out.push_str(&format!("{y_label}\n"));
    for row in &grid {
        out.push('|');
        out.extend(row.iter());
        out.push('\n');
    }
    out.push('+');
    out.push_str(&"-".repeat(width));
    out.push_str(&format!("> {x_label}\n"));
    // Legend: one line per distinct marker.
    let mut seen: Vec<char> = Vec::new();
    for (marker, label, _, _) in points {
        if !seen.contains(marker) {
            seen.push(*marker);
            out.push_str(&format!("  {marker} = {label}\n"));
        }
    }
    out.push_str("  * = overlapping points\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = format_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1.00".into()],
                vec!["long-name".into(), "2.50".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[3].starts_with("long-name"));
    }

    #[test]
    fn short_rows_padded() {
        let t = format_table(&["a", "b", "c"], &[vec!["x".into()]]);
        assert!(t.lines().count() == 3);
    }

    #[test]
    fn fmt_decimals() {
        assert_eq!(fmt(1.23456, 2), "1.23");
        assert_eq!(fmt(2.0, 0), "2");
    }

    #[test]
    fn scatter_renders_markers_and_legend() {
        let pts = vec![
            ('a', "alpha".to_string(), 0.0, 0.0),
            ('b', "beta".to_string(), 1.0, 1.0),
        ];
        let art = ascii_scatter(&pts, 20, 10, "PC1", "PC2");
        assert!(art.contains('a'));
        assert!(art.contains('b'));
        assert!(art.contains("a = alpha"));
        assert!(art.contains("PC1"));
    }

    #[test]
    fn scatter_handles_degenerate_ranges() {
        let pts = vec![('x', "only".to_string(), 2.0, 2.0)];
        let art = ascii_scatter(&pts, 20, 10, "x", "y");
        assert!(art.contains('x'));
    }

    #[test]
    fn scatter_marks_collisions() {
        let pts = vec![
            ('a', "a".to_string(), 0.5, 0.5),
            ('b', "b".to_string(), 0.5, 0.5),
            ('c', "c".to_string(), 9.0, 9.0),
        ];
        let art = ascii_scatter(&pts, 20, 10, "x", "y");
        assert!(art.contains('*'));
    }
}
