//! Measurement campaigns: the data-collection step of §III.
//!
//! A campaign simulates a set of workloads on a set of machines and records
//! hardware-counter readouts plus power estimates — the stand-in for the
//! paper's perf-counter experiments on seven physical systems.

use horizon_simpoint::SimPointConfig;
use horizon_trace::{TraceGenerator, WorkloadProfile};
use horizon_uarch::{
    CoreSimulator, Counters, FleetSimulator, MachineConfig, PowerModel, PowerReport,
};
use horizon_workloads::Benchmark;
use serde::{Deserialize, Serialize};
use std::sync::{Arc, RwLock};

use crate::CoreError;

/// A pluggable measurement backend for campaigns.
///
/// The builtin backend simulates every grid cell directly (see
/// [`Campaign::measure_profiles`]). An alternative executor — such as
/// `horizon-engine`'s memoizing work-stealing engine — can be installed
/// process-wide with [`install_executor`]; every campaign in the process
/// then routes through it. Executors must be *transparent*: for any input
/// they must return exactly the grid the builtin backend would produce.
pub trait CampaignExecutor: Send + Sync {
    /// Measures the full `profiles` × `machines` grid for `campaign`.
    fn measure_profiles(
        &self,
        campaign: &Campaign,
        profiles: &[WorkloadProfile],
        machines: &[MachineConfig],
    ) -> CampaignResult;
}

static EXECUTOR: RwLock<Option<Arc<dyn CampaignExecutor>>> = RwLock::new(None);

/// Installs a process-wide campaign executor, replacing any previous one.
pub fn install_executor(executor: Arc<dyn CampaignExecutor>) {
    *EXECUTOR.write().expect("executor lock") = Some(executor);
}

/// Removes the installed executor, restoring the builtin backend.
pub fn clear_executor() {
    *EXECUTOR.write().expect("executor lock") = None;
}

fn installed_executor() -> Option<Arc<dyn CampaignExecutor>> {
    EXECUTOR.read().expect("executor lock").clone()
}

/// One (workload, machine) measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Measurement {
    /// Raw counter readout.
    pub counters: Counters,
    /// RAPL-style power estimate.
    pub power: PowerReport,
}

/// How a campaign turns its window into counters: exact full-window
/// simulation (the default, bit-reproducible) or SimPoint-style phase
/// sampling (approximate, bounded by a measured error budget).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SamplingPolicy {
    /// Simulate every instruction of the window. Results are bit-exact.
    #[default]
    Exact,
    /// Fingerprint fixed-size intervals, cluster them, and simulate only
    /// per-cluster representatives (see `horizon-simpoint`). Counters are
    /// reconstructed as weighted sums and carry a small, measured error.
    SimPoint {
        /// Instructions per fingerprinted interval.
        interval: u64,
        /// Cluster budget (a short tail interval may add one phase).
        max_phases: u64,
    },
}

impl SamplingPolicy {
    /// The SimPoint policy with the `horizon-simpoint` default knobs.
    pub fn simpoint_default() -> Self {
        SamplingPolicy::SimPoint {
            interval: SimPointConfig::DEFAULT_INTERVAL,
            max_phases: SimPointConfig::DEFAULT_MAX_PHASES,
        }
    }

    /// True for any non-exact policy.
    pub fn is_sampled(&self) -> bool {
        *self != SamplingPolicy::Exact
    }

    fn simpoint_config(&self) -> Option<SimPointConfig> {
        match *self {
            SamplingPolicy::Exact => None,
            SamplingPolicy::SimPoint {
                interval,
                max_phases,
            } => Some(SimPointConfig {
                interval,
                max_phases,
            }),
        }
    }
}

/// Campaign configuration: simulation window, warmup, seed and sampling
/// policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Campaign {
    /// Measured instructions per run.
    pub instructions: u64,
    /// Warmup instructions before measurement (plus structure pre-warming).
    pub warmup: u64,
    /// Trace seed; campaigns are fully deterministic given the seed.
    pub seed: u64,
    /// Exact simulation or phase sampling. Sampled campaigns remain fully
    /// deterministic, but their counters are reconstructions, not replays.
    pub sampling: SamplingPolicy,
}

impl Default for Campaign {
    /// The default window: large enough for stable MPKI estimates on every
    /// catalog workload.
    fn default() -> Self {
        Campaign {
            instructions: 300_000,
            warmup: 60_000,
            seed: 42,
            sampling: SamplingPolicy::Exact,
        }
    }
}

impl Campaign {
    /// A reduced window for tests and quick exploration.
    pub fn quick() -> Self {
        Campaign {
            instructions: 60_000,
            warmup: 20_000,
            seed: 42,
            sampling: SamplingPolicy::Exact,
        }
    }

    /// Returns the campaign with the given sampling policy.
    pub fn with_sampling(mut self, sampling: SamplingPolicy) -> Self {
        self.sampling = sampling;
        self
    }

    /// Measures every benchmark on every machine.
    pub fn measure(&self, benchmarks: &[Benchmark], machines: &[MachineConfig]) -> CampaignResult {
        let profiles: Vec<WorkloadProfile> =
            benchmarks.iter().map(|b| b.profile().clone()).collect();
        self.measure_profiles(&profiles, machines)
    }

    /// Measures arbitrary workload profiles (used for input-set variants)
    /// on every machine.
    pub fn measure_profiles(
        &self,
        profiles: &[WorkloadProfile],
        machines: &[MachineConfig],
    ) -> CampaignResult {
        if let Some(executor) = installed_executor() {
            return executor.measure_profiles(self, profiles, machines);
        }
        self.measure_profiles_builtin(profiles, machines)
    }

    /// The builtin backend: simulates the grid one workload row at a time
    /// through the fused fleet kernel — each row expands its trace once and
    /// steps every machine per instruction (see
    /// [`horizon_uarch::FleetSimulator`]) — fanning rows out across
    /// threads. Bypasses any installed executor (executors use
    /// [`Campaign::measure_one`] / [`Campaign::measure_fleet`] instead, so
    /// there is no recursion hazard either way).
    pub fn measure_profiles_builtin(
        &self,
        profiles: &[WorkloadProfile],
        machines: &[MachineConfig],
    ) -> CampaignResult {
        let workload_names: Vec<String> = profiles.iter().map(|p| p.name().to_string()).collect();
        let machine_names: Vec<String> = machines.iter().map(|m| m.name.clone()).collect();

        // One row of measurements per workload; rows are independent, so
        // fan out across threads.
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(profiles.len().max(1));
        let mut rows: Vec<Vec<Measurement>> = Vec::with_capacity(profiles.len());
        if threads <= 1 || profiles.len() <= 1 {
            for p in profiles {
                rows.push(self.measure_fleet(p, machines));
            }
        } else {
            let chunk = profiles.len().div_ceil(threads);
            let results: Vec<Vec<Vec<Measurement>>> = std::thread::scope(|scope| {
                let handles: Vec<_> = profiles
                    .chunks(chunk)
                    .map(|ps| {
                        scope.spawn(move || {
                            ps.iter().map(|p| self.measure_fleet(p, machines)).collect()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("no panics"))
                    .collect()
            });
            for group in results {
                rows.extend(group);
            }
        }

        CampaignResult {
            workload_names,
            machine_names,
            measurements: rows,
        }
    }

    /// Simulates one workload on a whole fleet of machines from a single
    /// trace expansion — bit-identical to calling
    /// [`Campaign::measure_one`] once per machine, but the trace streams
    /// once and structures shared between machine configurations are
    /// simulated once (see [`horizon_uarch::FleetSimulator`]).
    pub fn measure_fleet(
        &self,
        profile: &WorkloadProfile,
        machines: &[MachineConfig],
    ) -> Vec<Measurement> {
        if self.sampling.is_sampled() {
            return self.measure_fleet_sampled(profile, machines, || {
                TraceGenerator::new(profile, self.seed)
            });
        }
        let fleet = FleetSimulator::new(machines).with_warmup(self.warmup).run(
            profile,
            self.instructions,
            self.seed,
        );
        self.wrap_power(fleet, machines)
    }

    /// Phase-sampled measurement (see `horizon-simpoint`): fingerprints the
    /// window once, then simulates only representative slices stitched
    /// through one persistent fleet state and reconstructs the counters.
    /// `mk_source` is invoked once for the fingerprint pass and once for
    /// the stitched simulation; both invocations must return the same
    /// stream `TraceGenerator::new(profile, self.seed)` would expand, from
    /// position 0 (a packed-trace replay qualifies).
    ///
    /// # Panics
    ///
    /// Panics if the campaign's sampling policy is [`SamplingPolicy::Exact`]
    /// — callers decide between exact and sampled paths, this is the
    /// sampled one.
    pub fn measure_fleet_sampled<I: Iterator<Item = horizon_trace::Instruction>>(
        &self,
        profile: &WorkloadProfile,
        machines: &[MachineConfig],
        mk_source: impl FnMut() -> I,
    ) -> Vec<Measurement> {
        let config = self
            .sampling
            .simpoint_config()
            .expect("measure_fleet_sampled requires a sampling policy");
        let (_plan, fleet) = horizon_simpoint::sample_fleet(
            &config,
            profile,
            machines,
            self.warmup,
            self.instructions,
            mk_source,
        );
        self.wrap_power(fleet, machines)
    }

    fn wrap_power(&self, fleet: Vec<Counters>, machines: &[MachineConfig]) -> Vec<Measurement> {
        fleet
            .into_iter()
            .zip(machines)
            .map(|(counters, machine)| {
                let power = PowerModel::for_machine(machine).estimate(&counters, machine);
                Measurement { counters, power }
            })
            .collect()
    }

    /// [`Campaign::measure_fleet`] with the instruction stream supplied by
    /// the caller — the replay entry point. The source must reproduce the
    /// stream `TraceGenerator::new(profile, self.seed)` would expand (e.g.
    /// a packed trace from `horizon-tracestore`) and must yield at least
    /// `self.warmup + self.instructions` items; measurements are then
    /// bit-identical to [`Campaign::measure_fleet`].
    pub fn measure_fleet_trace(
        &self,
        profile: &WorkloadProfile,
        machines: &[MachineConfig],
        source: impl Iterator<Item = horizon_trace::Instruction>,
    ) -> Vec<Measurement> {
        let fleet = FleetSimulator::new(machines)
            .with_warmup(self.warmup)
            .run_trace(profile, self.instructions, source);
        self.wrap_power(fleet, machines)
    }

    /// Simulates a single (workload, machine) cell — the primitive every
    /// backend is built from. Fully deterministic: the result depends only
    /// on `(profile, machine, instructions, warmup, seed, sampling)`.
    pub fn measure_one(&self, profile: &WorkloadProfile, machine: &MachineConfig) -> Measurement {
        if self.sampling.is_sampled() {
            return self
                .measure_fleet_sampled(profile, std::slice::from_ref(machine), || {
                    TraceGenerator::new(profile, self.seed)
                })
                .pop()
                .expect("one machine, one measurement");
        }
        let counters = CoreSimulator::new(machine).with_warmup(self.warmup).run(
            profile,
            self.instructions,
            self.seed,
        );
        let power = PowerModel::for_machine(machine).estimate(&counters, machine);
        Measurement { counters, power }
    }
}

/// All measurements of a campaign: a workload × machine grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignResult {
    workload_names: Vec<String>,
    machine_names: Vec<String>,
    /// `measurements[workload][machine]`.
    measurements: Vec<Vec<Measurement>>,
}

impl CampaignResult {
    /// Assembles a result from its parts (for alternative executors).
    ///
    /// # Panics
    ///
    /// Panics if the measurement grid's shape does not match the name
    /// lists.
    pub fn from_grid(
        workload_names: Vec<String>,
        machine_names: Vec<String>,
        measurements: Vec<Vec<Measurement>>,
    ) -> CampaignResult {
        assert_eq!(measurements.len(), workload_names.len(), "row count");
        for row in &measurements {
            assert_eq!(row.len(), machine_names.len(), "column count");
        }
        CampaignResult {
            workload_names,
            machine_names,
            measurements,
        }
    }

    /// Workload names, in measurement order.
    pub fn workloads(&self) -> &[String] {
        &self.workload_names
    }

    /// Machine names, in measurement order.
    pub fn machines(&self) -> &[String] {
        &self.machine_names
    }

    /// The measurement for a workload/machine index pair.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn at(&self, workload: usize, machine: usize) -> &Measurement {
        &self.measurements[workload][machine]
    }

    /// Looks a measurement up by names.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NotFound`] if either name is unknown.
    pub fn lookup(&self, workload: &str, machine: &str) -> Result<&Measurement, CoreError> {
        let w = self.workload_index(workload)?;
        let m = self
            .machine_names
            .iter()
            .position(|n| n == machine)
            .ok_or_else(|| CoreError::NotFound {
                kind: "machine",
                name: machine.to_string(),
            })?;
        Ok(&self.measurements[w][m])
    }

    /// Index of a workload by name.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NotFound`] for unknown names.
    pub fn workload_index(&self, workload: &str) -> Result<usize, CoreError> {
        self.workload_names
            .iter()
            .position(|n| n == workload)
            .ok_or_else(|| CoreError::NotFound {
                kind: "workload",
                name: workload.to_string(),
            })
    }

    /// Restricts the result to a subset of workloads (by index, in order).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_workloads(&self, indices: &[usize]) -> CampaignResult {
        CampaignResult {
            workload_names: indices
                .iter()
                .map(|&i| self.workload_names[i].clone())
                .collect(),
            machine_names: self.machine_names.clone(),
            measurements: indices
                .iter()
                .map(|&i| self.measurements[i].clone())
                .collect(),
        }
    }

    /// Restricts the result to a subset of machines (by index, in order).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_machines(&self, indices: &[usize]) -> CampaignResult {
        CampaignResult {
            workload_names: self.workload_names.clone(),
            machine_names: indices
                .iter()
                .map(|&m| self.machine_names[m].clone())
                .collect(),
            measurements: self
                .measurements
                .iter()
                .map(|row| indices.iter().map(|&m| row[m].clone()).collect())
                .collect(),
        }
    }

    /// Exports the campaign as CSV: one row per (workload, machine) pair,
    /// one column per metric — ready for external plotting tools.
    pub fn to_csv(&self, metrics: &[crate::metrics::Metric]) -> String {
        let mut out = String::from("workload,machine");
        for m in metrics {
            out.push(',');
            out.push_str(m.label());
        }
        out.push('\n');
        for (w, workload) in self.workload_names.iter().enumerate() {
            for (m, machine) in self.machine_names.iter().enumerate() {
                out.push_str(&format!("\"{workload}\",\"{machine}\""));
                for metric in metrics {
                    out.push_str(&format!(",{:.6}", metric.extract(self.at(w, m))));
                }
                out.push('\n');
            }
        }
        out
    }

    /// Merges two campaigns over the same machines (e.g. CPU2017 + CPU2006).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidArgument`] if the machine lists differ.
    pub fn concat(&self, other: &CampaignResult) -> Result<CampaignResult, CoreError> {
        if self.machine_names != other.machine_names {
            return Err(CoreError::InvalidArgument {
                reason: "cannot concatenate campaigns over different machines".into(),
            });
        }
        let mut workload_names = self.workload_names.clone();
        workload_names.extend(other.workload_names.iter().cloned());
        let mut measurements = self.measurements.clone();
        measurements.extend(other.measurements.iter().cloned());
        Ok(CampaignResult {
            workload_names,
            machine_names: self.machine_names.clone(),
            measurements,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use horizon_workloads::cpu2017;

    fn tiny_campaign() -> CampaignResult {
        let benchmarks: Vec<Benchmark> = cpu2017::speed_int().into_iter().take(3).collect();
        let machines = vec![MachineConfig::skylake_i7_6700(), MachineConfig::sparc_t4()];
        Campaign {
            instructions: 20_000,
            warmup: 5_000,
            seed: 7,
            ..Campaign::default()
        }
        .measure(&benchmarks, &machines)
    }

    #[test]
    fn grid_shape_and_names() {
        let r = tiny_campaign();
        assert_eq!(r.workloads().len(), 3);
        assert_eq!(r.machines().len(), 2);
        assert_eq!(r.workloads()[0], "600.perlbench_s");
        let m = r.at(0, 0);
        assert_eq!(m.counters.instructions, 20_000);
        assert!(m.power.core_watts > 0.0);
    }

    #[test]
    fn lookup_by_name() {
        let r = tiny_campaign();
        assert!(r.lookup("602.gcc_s", "SPARC T4").is_ok());
        assert!(matches!(
            r.lookup("nope", "SPARC T4"),
            Err(CoreError::NotFound {
                kind: "workload",
                ..
            })
        ));
        assert!(matches!(
            r.lookup("602.gcc_s", "nope"),
            Err(CoreError::NotFound {
                kind: "machine",
                ..
            })
        ));
    }

    #[test]
    fn deterministic_across_runs_and_threading() {
        let a = tiny_campaign();
        let b = tiny_campaign();
        assert_eq!(a, b);
    }

    #[test]
    fn select_and_concat() {
        let r = tiny_campaign();
        let sub = r.select_workloads(&[2, 0]);
        assert_eq!(sub.workloads(), &["605.mcf_s", "600.perlbench_s"]);
        assert_eq!(sub.at(1, 0), r.at(0, 0));

        let merged = r.concat(&sub).unwrap();
        assert_eq!(merged.workloads().len(), 5);

        let other_machines =
            Campaign::quick().measure(&cpu2017::speed_int()[..1], &[MachineConfig::opteron_2435()]);
        assert!(r.concat(&other_machines).is_err());
    }

    #[test]
    fn select_machines_projects_columns() {
        let r = tiny_campaign();
        let sub = r.select_machines(&[1]);
        assert_eq!(sub.machines(), &["SPARC T4"]);
        assert_eq!(sub.workloads().len(), 3);
        assert_eq!(sub.at(0, 0), r.at(0, 1));
    }

    #[test]
    fn csv_export_shape() {
        use crate::metrics::Metric;
        let r = tiny_campaign();
        let csv = r.to_csv(&[Metric::Cpi, Metric::L1DMpki]);
        let lines: Vec<&str> = csv.lines().collect();
        // Header + workloads × machines rows.
        assert_eq!(lines.len(), 1 + 3 * 2);
        assert_eq!(lines[0], "workload,machine,CPI,L1D_MPKI");
        assert!(lines[1].starts_with("\"600.perlbench_s\",\"Intel Core i7-6700\","));
        // Every data row has 4 comma-separated fields.
        for line in &lines[1..] {
            assert_eq!(line.matches(',').count(), 3, "{line}");
        }
    }

    #[test]
    fn different_machines_produce_different_counters() {
        let r = tiny_campaign();
        // mcf on Skylake vs T4: distinct cache geometry → distinct misses.
        let sky = r.lookup("605.mcf_s", "Intel Core i7-6700").unwrap();
        let t4 = r.lookup("605.mcf_s", "SPARC T4").unwrap();
        assert_ne!(sky.counters.l1d_misses, t4.counters.l1d_misses);
    }
}
