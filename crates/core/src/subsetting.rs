//! Representative benchmark subsets (§IV-A, Table V).
//!
//! Cut the dendrogram into `k` clusters, take each cluster's medoid, and
//! report the linkage-distance threshold and the simulation-time reduction.

use horizon_cluster::select_representatives;
use serde::{Deserialize, Serialize};

use crate::similarity::SimilarityAnalysis;
use crate::CoreError;

/// A representative subset of a benchmark group.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Subset {
    /// Chosen representative benchmark names, ordered by cluster.
    pub representatives: Vec<String>,
    /// Full cluster memberships (names), parallel to `representatives`.
    pub clusters: Vec<Vec<String>>,
    /// The linkage distance at which the cut yields this many clusters —
    /// the "vertical line" of Figure 2.
    pub threshold: f64,
}

impl Subset {
    /// True if `name` is one of the representatives.
    pub fn contains(&self, name: &str) -> bool {
        self.representatives.iter().any(|r| r == name)
    }
}

/// Cuts the analysis into `k` clusters and picks each cluster's medoid
/// ("the benchmark with the shortest linkage distance", §IV-A).
///
/// # Errors
///
/// Returns [`CoreError::InvalidArgument`] if `k` is zero or exceeds the
/// number of workloads.
///
/// # Example
///
/// ```no_run
/// use horizon_core::campaign::Campaign;
/// use horizon_core::similarity::SimilarityAnalysis;
/// use horizon_core::subsetting::representative_subset;
/// use horizon_uarch::MachineConfig;
/// use horizon_workloads::cpu2017;
///
/// let result = Campaign::default()
///     .measure(&cpu2017::rate_fp(), &MachineConfig::table_iv_machines());
/// let analysis = SimilarityAnalysis::from_campaign(&result)?;
/// let subset = representative_subset(&analysis, 3)?;
/// println!("run only: {}", subset.representatives.join(", "));
/// # Ok::<(), horizon_core::CoreError>(())
/// ```
pub fn representative_subset(analysis: &SimilarityAnalysis, k: usize) -> Result<Subset, CoreError> {
    let mut span = horizon_telemetry::span("core.subset");
    span.record("k", k);
    let n = analysis.names().len();
    if k == 0 || k > n {
        return Err(CoreError::InvalidArgument {
            reason: format!("subset size {k} out of range 1..={n}"),
        });
    }
    let tree = analysis.dendrogram();
    let clusters = tree.cut_into(k);
    let reps = select_representatives(&clusters, analysis.distances())?;
    Ok(Subset {
        representatives: reps
            .iter()
            .map(|r| analysis.names()[r.index].clone())
            .collect(),
        clusters: clusters
            .iter()
            .map(|c| c.iter().map(|&i| analysis.names()[i].clone()).collect())
            .collect(),
        threshold: tree.threshold_for(k),
    })
}

/// Simulation-time reduction from running only the subset: total dynamic
/// instruction count of the full group divided by the subset's
/// (the 5.6×/4.5×/6.3× numbers of §IV-A).
///
/// `icounts` maps benchmark name → dynamic instruction count (any unit).
///
/// # Errors
///
/// Returns [`CoreError::NotFound`] if a benchmark has no icount entry and
/// [`CoreError::InvalidArgument`] if the subset's total is zero.
pub fn simulation_time_reduction(
    subset: &Subset,
    icounts: &[(String, f64)],
) -> Result<f64, CoreError> {
    let find = |name: &str| -> Result<f64, CoreError> {
        icounts
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, c)| *c)
            .ok_or_else(|| CoreError::NotFound {
                kind: "icount",
                name: name.to_string(),
            })
    };
    let mut total = 0.0;
    for cluster in &subset.clusters {
        for name in cluster {
            total += find(name)?;
        }
    }
    let mut subset_total = 0.0;
    for name in &subset.representatives {
        subset_total += find(name)?;
    }
    if subset_total <= 0.0 {
        return Err(CoreError::InvalidArgument {
            reason: "subset has zero total instruction count".into(),
        });
    }
    Ok(total / subset_total)
}

/// Chooses the largest subset whose total dynamic instruction count fits a
/// simulation-time budget (§IV-A: "such analysis can be done at varying
/// linkage distances to select the appropriate number of benchmarks when
/// simulation time is constrained").
///
/// `budget_fraction` is the allowed share of the full group's instruction
/// count (e.g. `0.25` = a quarter of the simulation time). Returns the
/// subset with the most representatives that fits; at minimum one.
///
/// # Errors
///
/// Returns [`CoreError::InvalidArgument`] for a non-positive budget and
/// propagates icount lookups.
pub fn subset_for_budget(
    analysis: &SimilarityAnalysis,
    icounts: &[(String, f64)],
    budget_fraction: f64,
) -> Result<Subset, CoreError> {
    if budget_fraction <= 0.0 || !budget_fraction.is_finite() {
        return Err(CoreError::InvalidArgument {
            reason: format!("budget fraction must be positive, got {budget_fraction}"),
        });
    }
    let n = analysis.names().len();
    let mut best: Option<Subset> = None;
    for k in 1..=n {
        let candidate = representative_subset(analysis, k)?;
        // reduction = total / subset_total, so subset share = 1 / reduction.
        let reduction = simulation_time_reduction(&candidate, icounts)?;
        if 1.0 / reduction <= budget_fraction {
            best = Some(candidate);
        } else if best.is_some() {
            // Subset cost grows with k once representatives accumulate;
            // keep scanning anyway since medoids can shrink the total.
            continue;
        }
    }
    best.map_or_else(|| representative_subset(analysis, 1), Ok)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::Campaign;
    use horizon_uarch::MachineConfig;
    use horizon_workloads::cpu2017;

    fn analysis() -> SimilarityAnalysis {
        // The mcf-outlier claim needs a stable-statistics window.
        let r = Campaign {
            instructions: 200_000,
            warmup: 50_000,
            seed: 42,
            ..Campaign::default()
        }
        .measure(
            &cpu2017::speed_int(),
            &[
                MachineConfig::skylake_i7_6700(),
                MachineConfig::sparc_t4(),
                MachineConfig::opteron_2435(),
            ],
        );
        SimilarityAnalysis::from_campaign(&r).unwrap()
    }

    #[test]
    fn subset_of_three_has_three_clusters() {
        let a = analysis();
        let s = representative_subset(&a, 3).unwrap();
        assert_eq!(s.representatives.len(), 3);
        assert_eq!(s.clusters.len(), 3);
        // Every benchmark appears in exactly one cluster.
        let all: usize = s.clusters.iter().map(Vec::len).sum();
        assert_eq!(all, 10);
        // Representatives are members of their own cluster.
        for (rep, members) in s.representatives.iter().zip(&s.clusters) {
            assert!(members.contains(rep));
        }
        assert!(s.threshold > 0.0);
    }

    #[test]
    fn mcf_lands_in_the_subset() {
        // §IV-A / Table V: mcf is its own cluster (most distinct) and must
        // be picked as a representative.
        let a = analysis();
        let s = representative_subset(&a, 3).unwrap();
        assert!(s.contains("605.mcf_s"), "{:?}", s.representatives);
    }

    #[test]
    fn k_bounds_checked() {
        let a = analysis();
        assert!(representative_subset(&a, 0).is_err());
        assert!(representative_subset(&a, 11).is_err());
        assert!(representative_subset(&a, 10).is_ok());
    }

    #[test]
    fn time_reduction_matches_icounts() {
        let a = analysis();
        let s = representative_subset(&a, 3).unwrap();
        let icounts: Vec<(String, f64)> = cpu2017::speed_int()
            .iter()
            .map(|b| (b.name().to_string(), b.icount_billions()))
            .collect();
        let reduction = simulation_time_reduction(&s, &icounts).unwrap();
        // 3 of 10 benchmarks: reduction is material and finite.
        assert!(reduction > 1.5, "{reduction}");
        assert!(reduction.is_finite());

        // Missing icounts are reported.
        assert!(matches!(
            simulation_time_reduction(&s, &[]),
            Err(CoreError::NotFound { .. })
        ));
    }

    #[test]
    fn budgeted_subset_fits_the_budget() {
        let a = analysis();
        let icounts: Vec<(String, f64)> = cpu2017::speed_int()
            .iter()
            .map(|b| (b.name().to_string(), b.icount_billions()))
            .collect();
        let total: f64 = icounts.iter().map(|(_, c)| c).sum();
        for budget in [0.1, 0.3, 0.6] {
            let s = subset_for_budget(&a, &icounts, budget).unwrap();
            let cost: f64 = s
                .representatives
                .iter()
                .map(|n| icounts.iter().find(|(m, _)| m == n).unwrap().1)
                .sum();
            // Either the subset fits the budget, or it is the minimal k=1
            // fallback.
            assert!(
                cost / total <= budget + 1e-9 || s.representatives.len() == 1,
                "budget {budget}: cost share {}",
                cost / total
            );
        }
        // A generous budget admits more representatives than a tight one.
        let tight = subset_for_budget(&a, &icounts, 0.05).unwrap();
        let loose = subset_for_budget(&a, &icounts, 0.9).unwrap();
        assert!(loose.representatives.len() >= tight.representatives.len());
        assert!(subset_for_budget(&a, &icounts, 0.0).is_err());
    }

    #[test]
    fn singleton_subset_is_whole_group() {
        let a = analysis();
        let s = representative_subset(&a, 1).unwrap();
        assert_eq!(s.clusters[0].len(), 10);
        assert_eq!(s.representatives.len(), 1);
    }
}
