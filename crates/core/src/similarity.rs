//! The similarity methodology of §III: standardize the feature matrix,
//! extract principal components with the Kaiser criterion, measure
//! Euclidean distances in PC space, and cluster hierarchically.

use horizon_cluster::{cluster, render_ascii, Dendrogram, Linkage, RenderOptions};
use horizon_stats::{DistanceMatrix, Matrix, Metric as DistanceMetric, Pca, Retention};

use crate::campaign::CampaignResult;
use crate::metrics::{feature_matrix, Metric};
use crate::CoreError;

/// A complete similarity analysis over a set of workloads.
#[derive(Debug, Clone)]
pub struct SimilarityAnalysis {
    names: Vec<String>,
    feature_labels: Vec<String>,
    pca: Pca,
    distances: DistanceMatrix,
    tree: Dendrogram,
    linkage: Linkage,
}

impl SimilarityAnalysis {
    /// Runs the full §III pipeline on a campaign result using the Table III
    /// metric set, Kaiser-criterion retention and average linkage (the
    /// defaults of published SPEC subsetting practice).
    ///
    /// # Errors
    ///
    /// Propagates statistics/clustering failures (e.g. fewer than two
    /// workloads).
    pub fn from_campaign(result: &CampaignResult) -> Result<Self, CoreError> {
        Self::from_campaign_with(
            result,
            &Metric::table_iii(),
            Retention::Kaiser,
            Linkage::Average,
        )
    }

    /// Like [`SimilarityAnalysis::from_campaign`] with explicit metric set,
    /// PC retention and linkage — the knobs the paper varies between
    /// analyses (e.g. Figure 9 uses only branch metrics).
    ///
    /// # Errors
    ///
    /// Propagates statistics/clustering failures.
    pub fn from_campaign_with(
        result: &CampaignResult,
        metrics: &[Metric],
        retention: Retention,
        linkage: Linkage,
    ) -> Result<Self, CoreError> {
        let (x, labels) = feature_matrix(result, metrics);
        let mut analysis =
            Self::from_features(result.workloads().to_vec(), &x, retention, linkage)?;
        analysis.feature_labels = labels;
        Ok(analysis)
    }

    /// Runs the pipeline on an explicit feature matrix (rows = workloads in
    /// the order of `names`).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidArgument`] if `names` does not match the
    /// matrix rows; otherwise propagates statistics/clustering failures.
    pub fn from_features(
        names: Vec<String>,
        features: &Matrix,
        retention: Retention,
        linkage: Linkage,
    ) -> Result<Self, CoreError> {
        let mut span = horizon_telemetry::span("core.similarity");
        span.record("workloads", names.len());
        span.record("features", features.cols());
        if names.len() != features.rows() {
            return Err(CoreError::InvalidArgument {
                reason: format!("{} names for {} feature rows", names.len(), features.rows()),
            });
        }
        let pca = Pca::fit(features, retention)?;
        let distances = DistanceMatrix::from_observations(pca.scores(), DistanceMetric::Euclidean);
        let tree = cluster(&distances, linkage)?;
        let feature_labels = (0..features.cols()).map(|i| format!("f{i}")).collect();
        Ok(SimilarityAnalysis {
            names,
            feature_labels,
            pca,
            distances,
            tree,
            linkage,
        })
    }

    /// Workload names, in row order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// The fitted PCA model (retained PCs, eigenvalues, loadings).
    pub fn pca(&self) -> &Pca {
        &self.pca
    }

    /// Pairwise Euclidean distances in retained-PC space.
    pub fn distances(&self) -> &DistanceMatrix {
        &self.distances
    }

    /// The dendrogram over the workloads.
    pub fn dendrogram(&self) -> &Dendrogram {
        &self.tree
    }

    /// The linkage criterion used.
    pub fn linkage(&self) -> Linkage {
        self.linkage
    }

    /// Index of a workload by name.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NotFound`] for unknown names.
    pub fn index_of(&self, name: &str) -> Result<usize, CoreError> {
        self.names
            .iter()
            .position(|n| n == name)
            .ok_or_else(|| CoreError::NotFound {
                kind: "workload",
                name: name.to_string(),
            })
    }

    /// Distance between two workloads by name.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NotFound`] for unknown names.
    pub fn distance_between(&self, a: &str, b: &str) -> Result<f64, CoreError> {
        Ok(self.distances.get(self.index_of(a)?, self.index_of(b)?))
    }

    /// The workload with the most distinct behavior: the one whose mean
    /// distance to all others is largest (how the paper identifies mcf and
    /// cactuBSSN as outliers).
    pub fn most_distinct(&self) -> &str {
        let idx = (0..self.names.len())
            .max_by(|&a, &b| {
                self.distances
                    .mean_distance_from(a)
                    .partial_cmp(&self.distances.mean_distance_from(b))
                    .expect("finite distances")
            })
            .expect("non-empty analysis");
        &self.names[idx]
    }

    /// Scatter coordinates `(names, x, y)` of the workloads on two retained
    /// PCs (0-based), as in Figures 9–12.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidArgument`] if a PC index is not retained.
    pub fn pc_scatter(
        &self,
        pc_x: usize,
        pc_y: usize,
    ) -> Result<Vec<(String, f64, f64)>, CoreError> {
        let k = self.pca.components();
        if pc_x >= k || pc_y >= k {
            return Err(CoreError::InvalidArgument {
                reason: format!(
                    "PC{}/{} requested but only {k} retained",
                    pc_x + 1,
                    pc_y + 1
                ),
            });
        }
        let scores = self.pca.scores();
        Ok(self
            .names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), scores[(i, pc_x)], scores[(i, pc_y)]))
            .collect())
    }

    /// The `k` features with the largest absolute loading on a retained PC
    /// (most dominant first) — the paper's "PC2 is dominated by branch
    /// mispredictions per kilo instructions" interpretation (§IV-E).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidArgument`] for non-retained PCs.
    pub fn dominant_features(&self, pc: usize, k: usize) -> Result<Vec<(String, f64)>, CoreError> {
        if pc >= self.pca.components() {
            return Err(CoreError::InvalidArgument {
                reason: format!("PC{} not retained (have {})", pc + 1, self.pca.components()),
            });
        }
        let loadings = self.pca.loadings();
        Ok(self
            .pca
            .dominant_features(pc, k)
            .into_iter()
            .map(|f| (self.feature_labels[f].clone(), loadings[(f, pc)]))
            .collect())
    }

    /// ASCII dendrogram (Figures 2–4 and 13).
    ///
    /// # Errors
    ///
    /// Propagates rendering failures.
    pub fn render_dendrogram(&self) -> Result<String, CoreError> {
        Ok(render_ascii(
            &self.tree,
            &self.names,
            &RenderOptions::default(),
        )?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::Campaign;
    use horizon_uarch::MachineConfig;
    use horizon_workloads::cpu2017;

    fn analysis() -> SimilarityAnalysis {
        let benchmarks = cpu2017::speed_int();
        let machines = vec![
            MachineConfig::skylake_i7_6700(),
            MachineConfig::sparc_t4(),
            MachineConfig::opteron_2435(),
        ];
        let r = Campaign::quick().measure(&benchmarks, &machines);
        SimilarityAnalysis::from_campaign(&r).unwrap()
    }

    #[test]
    fn pipeline_produces_consistent_shapes() {
        let a = analysis();
        assert_eq!(a.names().len(), 10);
        assert_eq!(a.distances().len(), 10);
        assert_eq!(a.dendrogram().len(), 10);
        assert!(a.pca().components() >= 1);
        assert_eq!(a.pca().scores().rows(), 10);
        assert_eq!(a.linkage(), Linkage::Average);
    }

    #[test]
    fn kaiser_retains_high_variance() {
        let a = analysis();
        // Kaiser-retained PCs cover most variance, like the paper's 91%+.
        assert!(a.pca().coverage() > 0.7, "{}", a.pca().coverage());
    }

    #[test]
    fn identical_benchmark_is_closest_to_itself() {
        let a = analysis();
        let d = a.distance_between("605.mcf_s", "605.mcf_s").unwrap();
        assert_eq!(d, 0.0);
    }

    #[test]
    fn mcf_is_most_distinct_speed_int() {
        // §IV-A: "the 605.mcf_s … have the most distinct performance
        // features among all the INT benchmarks."
        let a = analysis();
        assert_eq!(a.most_distinct(), "605.mcf_s");
    }

    #[test]
    fn scatter_and_render() {
        let a = analysis();
        let pts = a.pc_scatter(0, 1).unwrap();
        assert_eq!(pts.len(), 10);
        assert!(a.pc_scatter(99, 0).is_err());
        let art = a.render_dendrogram().unwrap();
        assert!(art.contains("605.mcf_s"));
    }

    #[test]
    fn dominant_features_carry_metric_labels() {
        let a = analysis();
        let top = a.dominant_features(0, 3).unwrap();
        assert_eq!(top.len(), 3);
        // Labels come from the metric set: "METRIC@machine".
        for (label, loading) in &top {
            assert!(label.contains('@'), "{label}");
            assert!(loading.is_finite());
        }
        // Descending by |loading|.
        assert!(top[0].1.abs() >= top[1].1.abs());
        assert!(a.dominant_features(99, 3).is_err());
    }

    #[test]
    fn name_mismatch_rejected() {
        let x = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let err = SimilarityAnalysis::from_features(
            vec!["a".into()],
            &x,
            Retention::Kaiser,
            Linkage::Average,
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::InvalidArgument { .. }));
    }
}
