//! The HPCA'18 SPEC CPU2017 characterization pipeline.
//!
//! This crate composes the substrates — synthetic workloads
//! ([`horizon_workloads`]), the microarchitecture simulator
//! ([`horizon_uarch`]), PCA ([`horizon_stats`]) and hierarchical clustering
//! ([`horizon_cluster`]) — into the paper's methodology:
//!
//! 1. [`campaign`] — measure every benchmark on every machine
//!    (the perf-counter data-collection step of §III),
//! 2. [`metrics`] — the Table III metric set and feature-matrix assembly,
//! 3. [`similarity`] — standardize → PCA (Kaiser) → Euclidean distances →
//!    dendrograms (Figures 2–4, 13),
//! 4. [`subsetting`] — representative 3-benchmark subsets (Table V),
//! 5. [`validation`] — SPEC-score subset validation (Figures 5/6, Table VI),
//! 6. [`input_sets`] — representative input selection (Figures 7/8,
//!    Table VII),
//! 7. [`rate_speed`] — rate-vs-speed comparison (§IV-D),
//! 8. [`classification`] — branch/cache PC scatter plots (Figures 9/10),
//! 9. [`domains`] — application-domain classification (Table VIII),
//! 10. [`balance`] — CPU2017-vs-CPU2006, power and emerging-workload
//!     balance studies (Figures 11–13, §V),
//! 11. [`sensitivity`] — branch/L1D/D-TLB sensitivity classes (Table IX),
//! 12. [`cpi_stack`] — top-down CPI stacks (Figure 1),
//! 13. [`stability`] — leave-one-machine-out robustness of the methodology
//!     (the reason §III measures on seven machines).
//!
//! # Example
//!
//! ```no_run
//! use horizon_core::campaign::Campaign;
//! use horizon_core::similarity::SimilarityAnalysis;
//! use horizon_core::subsetting::representative_subset;
//! use horizon_uarch::MachineConfig;
//! use horizon_workloads::cpu2017;
//!
//! let benchmarks = cpu2017::speed_int();
//! let result = Campaign::default()
//!     .measure(&benchmarks, &MachineConfig::table_iv_machines());
//! let analysis = SimilarityAnalysis::from_campaign(&result)?;
//! let subset = representative_subset(&analysis, 3)?;
//! assert_eq!(subset.representatives.len(), 3);
//! # Ok::<(), horizon_core::CoreError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;

pub mod balance;
pub mod campaign;
pub mod classification;
pub mod cpi_stack;
pub mod domains;
pub mod input_sets;
pub mod metrics;
pub mod rate_speed;
pub mod report;
pub mod report_v1;
pub mod sensitivity;
pub mod similarity;
pub mod stability;
pub mod subsetting;
pub mod validation;

pub use error::CoreError;
