//! Subset validation against commercial-system scores (§IV-B, Figures 5/6,
//! Table VI).
//!
//! SPEC scores are geometric means of per-benchmark speedups over a
//! reference machine. The paper checks that the geomean over a 3-benchmark
//! subset predicts the geomean over the full sub-suite for real submitted
//! systems, and that random subsets do much worse.

use horizon_stats::geometric_mean;

use crate::subsetting::Subset;
use horizon_uarch::MachineConfig;
use horizon_workloads::systems::SystemRecord;
use horizon_workloads::Benchmark;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::campaign::Campaign;
use crate::CoreError;

/// Validation outcome for one commercial system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemScore {
    /// System name.
    pub system: String,
    /// Geomean speedup over the full benchmark group.
    pub full_score: f64,
    /// Geomean speedup over the subset only.
    pub subset_score: f64,
}

impl SystemScore {
    /// Relative prediction error in percent.
    pub fn error_pct(&self) -> f64 {
        if self.full_score == 0.0 {
            return 0.0;
        }
        ((self.subset_score - self.full_score) / self.full_score).abs() * 100.0
    }
}

/// Per-benchmark speedups of every system over the reference machine.
///
/// Speedup is runtime ratio; dynamic instruction counts cancel, leaving
/// `CPI_ref · f_sys / (CPI_sys · f_ref)`.
#[derive(Debug, Clone)]
pub struct SpeedupTable {
    benchmark_names: Vec<String>,
    system_names: Vec<String>,
    /// `speedups[system][benchmark]`.
    speedups: Vec<Vec<f64>>,
}

impl SpeedupTable {
    /// Measures all benchmarks on the reference machine and every system.
    ///
    /// # Example
    ///
    /// ```no_run
    /// use horizon_core::campaign::Campaign;
    /// use horizon_core::validation::{average_error, SpeedupTable};
    /// use horizon_workloads::systems::{reference_machine, submitted_systems};
    /// use horizon_workloads::{cpu2017, SubSuite};
    ///
    /// let benchmarks = cpu2017::rate_int();
    /// let table = SpeedupTable::measure(
    ///     &benchmarks,
    ///     &submitted_systems(SubSuite::RateInt),
    ///     &reference_machine(),
    ///     &Campaign::default(),
    /// );
    /// let scores = table.validate(&["505.mcf_r".to_string()])?;
    /// println!("avg error {:.1}%", average_error(&scores));
    /// # Ok::<(), horizon_core::CoreError>(())
    /// ```
    pub fn measure(
        benchmarks: &[Benchmark],
        systems: &[SystemRecord],
        reference: &MachineConfig,
        campaign: &Campaign,
    ) -> SpeedupTable {
        let mut machines: Vec<MachineConfig> = vec![reference.clone()];
        machines.extend(systems.iter().map(|s| s.machine.clone()));
        // Machine names must be unique for lookups; rely on position instead.
        let result = campaign.measure(benchmarks, &machines);
        let n = benchmarks.len();
        let speedups: Vec<Vec<f64>> = (0..systems.len())
            .map(|s| {
                (0..n)
                    .map(|b| {
                        let refm = &result.at(b, 0).counters;
                        let sysm = &result.at(b, s + 1).counters;
                        let ref_time = refm.cpi() / refm.freq_ghz;
                        let sys_time = sysm.cpi() / sysm.freq_ghz;
                        ref_time / sys_time
                    })
                    .collect()
            })
            .collect();
        SpeedupTable {
            benchmark_names: benchmarks.iter().map(|b| b.name().to_string()).collect(),
            system_names: systems.iter().map(|s| s.name.clone()).collect(),
            speedups,
        }
    }

    /// Benchmark names, in column order.
    pub fn benchmarks(&self) -> &[String] {
        &self.benchmark_names
    }

    /// System names, in row order.
    pub fn systems(&self) -> &[String] {
        &self.system_names
    }

    /// The speedup of `system` (by index) on benchmark `b` (by index).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn speedup(&self, system: usize, benchmark: usize) -> f64 {
        self.speedups[system][benchmark]
    }

    /// Validates a subset: per system, geomean over all benchmarks vs
    /// geomean over the subset.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NotFound`] if a subset name is not in the table
    /// and propagates geometric-mean failures.
    pub fn validate(&self, subset: &[String]) -> Result<Vec<SystemScore>, CoreError> {
        let mut span = horizon_telemetry::span("core.validate");
        span.record("subset", subset.len());
        let indices: Vec<usize> = subset
            .iter()
            .map(|name| {
                self.benchmark_names
                    .iter()
                    .position(|n| n == name)
                    .ok_or_else(|| CoreError::NotFound {
                        kind: "benchmark",
                        name: name.clone(),
                    })
            })
            .collect::<Result<_, _>>()?;
        self.system_names
            .iter()
            .zip(&self.speedups)
            .map(|(system, row)| {
                let full = geometric_mean(row)?;
                let sub: Vec<f64> = indices.iter().map(|&i| row[i]).collect();
                let subset_score = geometric_mean(&sub)?;
                Ok(SystemScore {
                    system: system.clone(),
                    full_score: full,
                    subset_score,
                })
            })
            .collect()
    }

    /// Validates a clustered subset with cluster-size weighting: each
    /// representative's speedup enters the geomean weighted by how many
    /// benchmarks it stands for, following the weighted-score practice of
    /// Phansalkar et al. (ISCA'07) that this group's subsetting work uses.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NotFound`] if a representative is not in the
    /// table and propagates geometric-mean failures.
    pub fn validate_clustered(&self, subset: &Subset) -> Result<Vec<SystemScore>, CoreError> {
        let mut span = horizon_telemetry::span("core.validate");
        span.record("subset", subset.representatives.len());
        span.record("weighted", true);
        let indices: Vec<(usize, f64)> = subset
            .representatives
            .iter()
            .zip(&subset.clusters)
            .map(|(name, members)| {
                let idx = self
                    .benchmark_names
                    .iter()
                    .position(|n| n == name)
                    .ok_or_else(|| CoreError::NotFound {
                        kind: "benchmark",
                        name: name.clone(),
                    })?;
                Ok((idx, members.len() as f64))
            })
            .collect::<Result<_, CoreError>>()?;
        self.system_names
            .iter()
            .zip(&self.speedups)
            .map(|(system, row)| {
                let full = geometric_mean(row)?;
                let total_w: f64 = indices.iter().map(|(_, w)| w).sum();
                let log_mean: f64 =
                    indices.iter().map(|&(i, w)| w * row[i].ln()).sum::<f64>() / total_w;
                Ok(SystemScore {
                    system: system.clone(),
                    full_score: full,
                    subset_score: log_mean.exp(),
                })
            })
            .collect()
    }

    /// Validates a uniformly random `k`-benchmark subset (Table VI's
    /// "Rand set" baselines).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidArgument`] for out-of-range `k`.
    pub fn validate_random(&self, k: usize, seed: u64) -> Result<Vec<SystemScore>, CoreError> {
        let n = self.benchmark_names.len();
        if k == 0 || k > n {
            return Err(CoreError::InvalidArgument {
                reason: format!("random subset size {k} out of range 1..={n}"),
            });
        }
        let mut rng = SmallRng::seed_from_u64(seed);
        // Floyd's algorithm for a k-distinct sample.
        let mut chosen: Vec<usize> = Vec::with_capacity(k);
        for j in n - k..n {
            let t = rng.gen_range(0..=j);
            if chosen.contains(&t) {
                chosen.push(j);
            } else {
                chosen.push(t);
            }
        }
        let names: Vec<String> = chosen
            .iter()
            .map(|&i| self.benchmark_names[i].clone())
            .collect();
        self.validate(&names)
    }
}

/// Mean prediction error (percent) across systems.
pub fn average_error(scores: &[SystemScore]) -> f64 {
    if scores.is_empty() {
        return 0.0;
    }
    scores.iter().map(SystemScore::error_pct).sum::<f64>() / scores.len() as f64
}

/// Largest prediction error (percent) across systems.
pub fn max_error(scores: &[SystemScore]) -> f64 {
    scores
        .iter()
        .map(SystemScore::error_pct)
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use horizon_workloads::cpu2017;
    use horizon_workloads::systems::{reference_machine, submitted_systems};
    use horizon_workloads::SubSuite;

    fn table() -> SpeedupTable {
        SpeedupTable::measure(
            &cpu2017::speed_int()[..5],
            &submitted_systems(SubSuite::SpeedInt),
            &reference_machine(),
            &Campaign::quick(),
        )
    }

    #[test]
    fn speedups_exceed_reference() {
        let t = table();
        // Modern systems beat a 2.1 GHz SPARC-IV+ on everything.
        for s in 0..t.systems().len() {
            for b in 0..t.benchmarks().len() {
                assert!(t.speedup(s, b) > 1.0, "system {s} bench {b}");
            }
        }
    }

    #[test]
    fn full_subset_has_zero_error() {
        let t = table();
        let all: Vec<String> = t.benchmarks().to_vec();
        let scores = t.validate(&all).unwrap();
        for s in &scores {
            assert!(s.error_pct() < 1e-9);
        }
    }

    #[test]
    fn subset_error_is_bounded_and_reported() {
        let t = table();
        let scores = t
            .validate(&["605.mcf_s".to_string(), "623.xalancbmk_s".to_string()])
            .unwrap();
        assert_eq!(scores.len(), 4);
        let avg = average_error(&scores);
        assert!(avg >= 0.0 && avg.is_finite());
        assert!(max_error(&scores) >= avg);
    }

    #[test]
    fn unknown_subset_name_errors() {
        let t = table();
        assert!(matches!(
            t.validate(&["nope".to_string()]),
            Err(CoreError::NotFound { .. })
        ));
    }

    #[test]
    fn random_subsets_are_deterministic_per_seed() {
        let t = table();
        let a = t.validate_random(2, 1).unwrap();
        let b = t.validate_random(2, 1).unwrap();
        assert_eq!(a, b);
        assert!(t.validate_random(0, 1).is_err());
        assert!(t.validate_random(99, 1).is_err());
    }

    #[test]
    fn faster_clock_scores_higher() {
        // The 3.8 GHz variant of the same machine must outscore 3.4 GHz.
        let t = table();
        let all: Vec<String> = t.benchmarks().to_vec();
        let scores = t.validate(&all).unwrap();
        let find = |name: &str| {
            scores
                .iter()
                .find(|s| s.system.contains(name))
                .unwrap()
                .full_score
        };
        assert!(find("3.8GHz") > find("3.4GHz"));
    }
}
