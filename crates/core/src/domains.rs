//! Application-domain classification (§IV-F, Table VIII).
//!
//! Within each application domain, the paper marks the benchmarks with
//! *distinct* performance behavior — the set one should run to cover that
//! domain's performance spectrum. We reproduce the selection rule: greedily
//! keep benchmarks whose distance to every already-kept benchmark exceeds a
//! coverage threshold (rate versions preferred as they are shorter-running).

use horizon_workloads::{ApplicationDomain, Benchmark};
use serde::{Deserialize, Serialize};

use crate::similarity::SimilarityAnalysis;
use crate::CoreError;

/// Domain classification of one benchmark group.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DomainEntry {
    /// The application domain.
    pub domain: String,
    /// All member benchmark names.
    pub members: Vec<String>,
    /// The members marked distinct (bold in Table VIII).
    pub distinct: Vec<String>,
}

/// Builds the Table VIII classification: groups `benchmarks` by domain and
/// marks the distinct members of each group.
///
/// The threshold is a fraction (e.g. `0.5`) of the analysis-wide mean
/// pairwise distance: a member is redundant if it lies within
/// `threshold_fraction × mean distance` of an already-kept member.
///
/// # Errors
///
/// Propagates name-lookup failures if `analysis` does not contain all
/// benchmarks.
pub fn classify_domains(
    analysis: &SimilarityAnalysis,
    benchmarks: &[Benchmark],
    threshold_fraction: f64,
) -> Result<Vec<DomainEntry>, CoreError> {
    // Mean pairwise distance across the whole space.
    let n = analysis.names().len();
    let mut total = 0.0;
    let mut count = 0usize;
    for i in 0..n {
        for j in i + 1..n {
            total += analysis.distances().get(i, j);
            count += 1;
        }
    }
    let mean = if count > 0 { total / count as f64 } else { 0.0 };
    let threshold = mean * threshold_fraction;

    // Group by domain, preserving catalog order.
    let mut domains: Vec<(ApplicationDomain, Vec<&Benchmark>)> = Vec::new();
    for b in benchmarks {
        match domains.iter_mut().find(|(d, _)| *d == b.domain()) {
            Some((_, members)) => members.push(b),
            None => domains.push((b.domain(), vec![b])),
        }
    }

    domains
        .into_iter()
        .map(|(domain, members)| {
            // Prefer rate versions as representatives: "we mark only the
            // rate versions … (as they are short-running)" (§IV-F).
            let mut ordered: Vec<&Benchmark> = members.clone();
            ordered.sort_by_key(|b| !b.name().ends_with("_r") as u8);

            let mut distinct: Vec<String> = Vec::new();
            for b in &ordered {
                let i = analysis.index_of(b.name())?;
                let redundant = distinct.iter().any(|kept| {
                    analysis
                        .index_of(kept)
                        .map(|k| analysis.distances().get(i, k) < threshold)
                        .unwrap_or(false)
                });
                if !redundant {
                    distinct.push(b.name().to_string());
                }
            }
            Ok(DomainEntry {
                domain: domain.to_string(),
                members: members.iter().map(|b| b.name().to_string()).collect(),
                distinct,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::Campaign;
    use horizon_uarch::MachineConfig;
    use horizon_workloads::cpu2017;

    fn setup() -> (SimilarityAnalysis, Vec<Benchmark>) {
        let mut benchmarks = cpu2017::rate_int();
        benchmarks.extend(cpu2017::speed_int());
        let r = Campaign::quick().measure(
            &benchmarks,
            &[MachineConfig::skylake_i7_6700(), MachineConfig::sparc_t4()],
        );
        (SimilarityAnalysis::from_campaign(&r).unwrap(), benchmarks)
    }

    #[test]
    fn every_domain_has_at_least_one_distinct_member() {
        let (analysis, benchmarks) = setup();
        let table = classify_domains(&analysis, &benchmarks, 0.5).unwrap();
        assert!(!table.is_empty());
        for entry in &table {
            assert!(!entry.distinct.is_empty(), "{}", entry.domain);
            for d in &entry.distinct {
                assert!(entry.members.contains(d));
            }
        }
    }

    #[test]
    fn rate_versions_preferred_for_similar_pairs() {
        // §IV-F: perlbench rate/speed are near-identical, so the rate
        // version should carry the domain.
        let (analysis, benchmarks) = setup();
        let table = classify_domains(&analysis, &benchmarks, 0.5).unwrap();
        let compiler = table.iter().find(|e| e.domain == "Compiler").unwrap();
        assert!(compiler.distinct.iter().any(|n| n == "500.perlbench_r"));
        assert!(!compiler.distinct.iter().any(|n| n == "600.perlbench_s"));
    }

    #[test]
    fn tighter_threshold_marks_more_distinct() {
        let (analysis, benchmarks) = setup();
        let loose = classify_domains(&analysis, &benchmarks, 1.2).unwrap();
        let tight = classify_domains(&analysis, &benchmarks, 0.05).unwrap();
        let count = |t: &[DomainEntry]| t.iter().map(|e| e.distinct.len()).sum::<usize>();
        assert!(count(&tight) >= count(&loose));
    }

    #[test]
    fn ai_domain_contains_three_benchmark_families() {
        let (analysis, benchmarks) = setup();
        let table = classify_domains(&analysis, &benchmarks, 0.5).unwrap();
        let ai = table.iter().find(|e| e.domain == "AI").unwrap();
        // deepsjeng, leela, exchange2 in rate+speed = 6 members.
        assert_eq!(ai.members.len(), 6);
    }
}
