//! Robustness of the methodology to the machine population (§III).
//!
//! The paper measures on seven machines across three ISAs precisely so that
//! no single machine's quirks drive the similarity structure. This module
//! quantifies that: a leave-one-machine-out jackknife recomputes the
//! analysis without each machine in turn and reports how much the
//! representative subsets and the most-distinct benchmark move.

use serde::{Deserialize, Serialize};

use crate::campaign::CampaignResult;
use crate::similarity::SimilarityAnalysis;
use crate::subsetting::representative_subset;
use crate::CoreError;

/// Outcome of one leave-one-out replication.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JackknifeReplicate {
    /// The machine that was left out.
    pub dropped_machine: String,
    /// Representatives chosen without that machine.
    pub representatives: Vec<String>,
    /// Overlap with the full-population subset (0..=k).
    pub overlap: usize,
    /// Most-distinct benchmark without that machine.
    pub most_distinct: String,
}

/// Jackknife summary over all machines.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StabilityReport {
    /// The subset computed from the full machine population.
    pub baseline: Vec<String>,
    /// Most-distinct benchmark with every machine present.
    pub baseline_most_distinct: String,
    /// One replicate per dropped machine.
    pub replicates: Vec<JackknifeReplicate>,
}

impl StabilityReport {
    /// Mean representative overlap with the baseline, as a fraction of `k`.
    pub fn mean_overlap(&self) -> f64 {
        if self.replicates.is_empty() || self.baseline.is_empty() {
            return 1.0;
        }
        let k = self.baseline.len() as f64;
        self.replicates
            .iter()
            .map(|r| r.overlap as f64 / k)
            .sum::<f64>()
            / self.replicates.len() as f64
    }

    /// Fraction of replicates that agree with the baseline on the
    /// most-distinct benchmark.
    pub fn most_distinct_agreement(&self) -> f64 {
        if self.replicates.is_empty() {
            return 1.0;
        }
        self.replicates
            .iter()
            .filter(|r| r.most_distinct == self.baseline_most_distinct)
            .count() as f64
            / self.replicates.len() as f64
    }
}

/// Runs the leave-one-machine-out jackknife on a campaign, recomputing the
/// `k`-benchmark subset per replicate.
///
/// # Errors
///
/// Returns [`CoreError::InvalidArgument`] if the campaign covers fewer than
/// two machines; propagates analysis failures.
pub fn machine_jackknife(result: &CampaignResult, k: usize) -> Result<StabilityReport, CoreError> {
    let machines = result.machines().to_vec();
    if machines.len() < 2 {
        return Err(CoreError::InvalidArgument {
            reason: "jackknife needs at least two machines".into(),
        });
    }
    let baseline_analysis = SimilarityAnalysis::from_campaign(result)?;
    let baseline = representative_subset(&baseline_analysis, k)?;

    let replicates = machines
        .iter()
        .map(|dropped| {
            let keep: Vec<usize> = (0..machines.len())
                .filter(|&m| &machines[m] != dropped)
                .collect();
            let reduced = result.select_machines(&keep);
            let analysis = SimilarityAnalysis::from_campaign(&reduced)?;
            let subset = representative_subset(&analysis, k)?;
            let overlap = subset
                .representatives
                .iter()
                .filter(|r| baseline.representatives.contains(r))
                .count();
            Ok(JackknifeReplicate {
                dropped_machine: dropped.clone(),
                representatives: subset.representatives,
                overlap,
                most_distinct: analysis.most_distinct().to_string(),
            })
        })
        .collect::<Result<_, CoreError>>()?;

    Ok(StabilityReport {
        baseline: baseline.representatives,
        baseline_most_distinct: baseline_analysis.most_distinct().to_string(),
        replicates,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::Campaign;
    use horizon_uarch::MachineConfig;
    use horizon_workloads::cpu2017;

    fn campaign() -> CampaignResult {
        Campaign {
            instructions: 120_000,
            warmup: 30_000,
            seed: 42,
            ..Campaign::default()
        }
        .measure(&cpu2017::speed_int(), &MachineConfig::table_iv_machines())
    }

    #[test]
    fn jackknife_produces_one_replicate_per_machine() {
        let report = machine_jackknife(&campaign(), 3).unwrap();
        assert_eq!(report.replicates.len(), 7);
        assert_eq!(report.baseline.len(), 3);
        for r in &report.replicates {
            assert_eq!(r.representatives.len(), 3);
            assert!(r.overlap <= 3);
        }
    }

    #[test]
    fn subsets_are_stable_under_machine_removal() {
        // The methodology's whole point: no single machine drives the
        // structure. Expect strong (not necessarily perfect) agreement.
        let report = machine_jackknife(&campaign(), 3).unwrap();
        assert!(
            report.mean_overlap() >= 0.5,
            "mean overlap {:.2}: {:#?}",
            report.mean_overlap(),
            report.replicates
        );
        assert!(report.most_distinct_agreement() >= 0.5);
    }

    #[test]
    fn needs_two_machines() {
        let r = Campaign::quick().measure(
            &cpu2017::speed_int()[..3],
            &[MachineConfig::skylake_i7_6700()],
        );
        assert!(machine_jackknife(&r, 2).is_err());
    }
}
