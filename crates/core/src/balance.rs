//! Suite-balance studies (§V, Figures 11–13).
//!
//! * CPU2017 vs CPU2006 coverage of the PC workload space (Figure 11),
//!   via convex-hull areas and outside-fraction counts,
//! * coverage of removed CPU2006 benchmarks (§V-B),
//! * the power-characteristics spectrum (Figure 12),
//! * the mixed dendrogram with EDA/graph/database workloads (Figure 13).

use horizon_cluster::Linkage;
use horizon_stats::Retention;
use serde::{Deserialize, Serialize};

use crate::campaign::CampaignResult;
use crate::metrics::Metric;
use crate::similarity::SimilarityAnalysis;
use crate::CoreError;

/// Convex-hull area of a 2-D point set (0 for fewer than 3 points).
pub fn coverage_area(points: &[(f64, f64)]) -> f64 {
    let hull = convex_hull(points);
    polygon_area(&hull)
}

/// Andrew's monotone-chain convex hull; returns hull vertices in
/// counter-clockwise order.
fn convex_hull(points: &[(f64, f64)]) -> Vec<(f64, f64)> {
    let mut pts: Vec<(f64, f64)> = points.to_vec();
    pts.sort_by(|a, b| a.partial_cmp(b).expect("finite points"));
    pts.dedup();
    if pts.len() < 3 {
        return pts;
    }
    let cross = |o: (f64, f64), a: (f64, f64), b: (f64, f64)| {
        (a.0 - o.0) * (b.1 - o.1) - (a.1 - o.1) * (b.0 - o.0)
    };
    let mut lower: Vec<(f64, f64)> = Vec::new();
    for &p in &pts {
        while lower.len() >= 2 && cross(lower[lower.len() - 2], lower[lower.len() - 1], p) <= 0.0 {
            lower.pop();
        }
        lower.push(p);
    }
    let mut upper: Vec<(f64, f64)> = Vec::new();
    for &p in pts.iter().rev() {
        while upper.len() >= 2 && cross(upper[upper.len() - 2], upper[upper.len() - 1], p) <= 0.0 {
            upper.pop();
        }
        upper.push(p);
    }
    lower.pop();
    upper.pop();
    lower.extend(upper);
    lower
}

fn polygon_area(hull: &[(f64, f64)]) -> f64 {
    if hull.len() < 3 {
        return 0.0;
    }
    let mut acc = 0.0;
    for i in 0..hull.len() {
        let (x1, y1) = hull[i];
        let (x2, y2) = hull[(i + 1) % hull.len()];
        acc += x1 * y2 - x2 * y1;
    }
    acc.abs() / 2.0
}

/// True if `p` lies inside (or on) the convex hull of `points`.
fn inside_hull(p: (f64, f64), hull: &[(f64, f64)]) -> bool {
    if hull.len() < 3 {
        return false;
    }
    let cross = |o: (f64, f64), a: (f64, f64), b: (f64, f64)| {
        (a.0 - o.0) * (b.1 - o.1) - (a.1 - o.1) * (b.0 - o.0)
    };
    (0..hull.len()).all(|i| cross(hull[i], hull[(i + 1) % hull.len()], p) >= -1e-12)
}

/// Coverage comparison of two suites in one PC plane (Figure 11).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoverageComparison {
    /// Convex-hull area of suite A.
    pub area_a: f64,
    /// Convex-hull area of suite B.
    pub area_b: f64,
    /// Fraction of suite-A points outside suite B's hull.
    pub outside_fraction: f64,
}

/// Compares suite A's coverage against suite B's in the `(pc_x, pc_y)`
/// plane of a joint analysis.
///
/// # Errors
///
/// Propagates name/PC lookup failures.
pub fn compare_coverage(
    analysis: &SimilarityAnalysis,
    suite_a: &[String],
    suite_b: &[String],
    pc_x: usize,
    pc_y: usize,
) -> Result<CoverageComparison, CoreError> {
    let scatter = analysis.pc_scatter(pc_x, pc_y)?;
    let pick = |names: &[String]| -> Result<Vec<(f64, f64)>, CoreError> {
        names
            .iter()
            .map(|n| {
                scatter
                    .iter()
                    .find(|(name, _, _)| name == n)
                    .map(|&(_, x, y)| (x, y))
                    .ok_or_else(|| CoreError::NotFound {
                        kind: "workload",
                        name: n.clone(),
                    })
            })
            .collect()
    };
    let a = pick(suite_a)?;
    let b = pick(suite_b)?;
    let hull_b = convex_hull(&b);
    let outside = a.iter().filter(|&&p| !inside_hull(p, &hull_b)).count();
    Ok(CoverageComparison {
        area_a: coverage_area(&a),
        area_b: coverage_area(&b),
        outside_fraction: outside as f64 / a.len().max(1) as f64,
    })
}

/// A removed benchmark together with its nearest CPU2017 neighbor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoverageGap {
    /// Removed CPU2006 benchmark name.
    pub removed: String,
    /// Closest CPU2017 benchmark.
    pub nearest: String,
    /// Distance to that neighbor in PC space.
    pub distance: f64,
    /// True if the distance exceeds the coverage threshold (the benchmark's
    /// performance spectrum is *not* covered, §V-B).
    pub uncovered: bool,
}

/// Checks which removed CPU2006 benchmarks CPU2017 fails to cover: a
/// removed benchmark is uncovered when its nearest CPU2017 neighbor is
/// farther than `threshold_fraction` × the space's mean pairwise distance.
///
/// # Errors
///
/// Propagates name lookups for benchmarks missing from the analysis.
pub fn removed_coverage(
    analysis: &SimilarityAnalysis,
    removed: &[String],
    cpu2017: &[String],
    threshold_fraction: f64,
) -> Result<Vec<CoverageGap>, CoreError> {
    let n = analysis.names().len();
    let mut total = 0.0;
    let mut count = 0;
    for i in 0..n {
        for j in i + 1..n {
            total += analysis.distances().get(i, j);
            count += 1;
        }
    }
    let mean = if count > 0 { total / count as f64 } else { 0.0 };
    let threshold = mean * threshold_fraction;

    removed
        .iter()
        .map(|r| {
            let ri = analysis.index_of(r)?;
            let (nearest, distance) = cpu2017
                .iter()
                .map(|c| {
                    let ci = analysis.index_of(c)?;
                    Ok((c.clone(), analysis.distances().get(ri, ci)))
                })
                .collect::<Result<Vec<_>, CoreError>>()?
                .into_iter()
                .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
                .ok_or_else(|| CoreError::InvalidArgument {
                    reason: "empty CPU2017 list".into(),
                })?;
            Ok(CoverageGap {
                removed: r.clone(),
                uncovered: distance > threshold,
                nearest,
                distance,
            })
        })
        .collect()
}

/// Builds the Figure 12 power-spectrum analysis: PCA over the power metrics
/// (core/LLC/DRAM watts) of a campaign run on the RAPL-capable machines.
///
/// # Errors
///
/// Propagates PCA failures.
pub fn power_analysis(result: &CampaignResult) -> Result<SimilarityAnalysis, CoreError> {
    SimilarityAnalysis::from_campaign_with(
        result,
        &Metric::power_set(),
        Retention::All,
        Linkage::Average,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hull_area_of_unit_square() {
        let pts = [(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0), (0.5, 0.5)];
        assert!((coverage_area(&pts) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_point_sets_have_zero_area() {
        assert_eq!(coverage_area(&[]), 0.0);
        assert_eq!(coverage_area(&[(1.0, 1.0)]), 0.0);
        assert_eq!(coverage_area(&[(0.0, 0.0), (2.0, 3.0)]), 0.0);
        // Collinear points.
        assert!(coverage_area(&[(0.0, 0.0), (1.0, 1.0), (2.0, 2.0)]) < 1e-12);
    }

    #[test]
    fn inside_hull_checks() {
        let square = convex_hull(&[(0.0, 0.0), (2.0, 0.0), (2.0, 2.0), (0.0, 2.0)]);
        assert!(inside_hull((1.0, 1.0), &square));
        assert!(!inside_hull((3.0, 1.0), &square));
        assert!(inside_hull((0.0, 0.0), &square)); // boundary counts
    }

    // Cross-crate coverage/balance behavior is exercised in the
    // integration tests (tests/balance.rs) with real campaigns.
}
