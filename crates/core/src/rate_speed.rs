//! Rate-vs-speed comparison (§IV-D).
//!
//! Most benchmarks exist in both a `5xx_r` (rate) and `6xx_s` (speed)
//! version. The paper measures all of them in one PC space and reports
//! which pairs diverge (imagick, bwaves, fotonik3d, ...) and which are
//! near-identical (nab, wrf, cactuBSSN, perlbench, ...).

use horizon_workloads::Benchmark;
use serde::{Deserialize, Serialize};

use crate::similarity::SimilarityAnalysis;
use crate::CoreError;

/// Distance between the rate and speed versions of one benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PairDistance {
    /// Short benchmark stem, e.g. `"imagick"`.
    pub stem: String,
    /// Rate-version name (`5xx…_r`).
    pub rate: String,
    /// Speed-version name (`6xx…_s`).
    pub speed: String,
    /// Euclidean distance between the two in retained-PC space.
    pub distance: f64,
}

/// Extracts the benchmark stem from a SPEC name (`"638.imagick_s"` →
/// `"imagick"`). Returns the input unchanged when it doesn't parse.
pub fn stem(name: &str) -> &str {
    let no_prefix = name.split_once('.').map(|(_, rest)| rest).unwrap_or(name);
    no_prefix
        .strip_suffix("_r")
        .or_else(|| no_prefix.strip_suffix("_s"))
        .unwrap_or(no_prefix)
}

/// Finds all rate/speed pairs among `benchmarks` and measures each pair's
/// PC-space distance, sorted by descending distance (most divergent first).
///
/// # Errors
///
/// Propagates lookup failures for analyses that don't contain the pairs.
pub fn rate_speed_distances(
    analysis: &SimilarityAnalysis,
    benchmarks: &[Benchmark],
) -> Result<Vec<PairDistance>, CoreError> {
    let mut pairs = Vec::new();
    for b in benchmarks {
        let name = b.name();
        if !name.ends_with("_r") {
            continue;
        }
        let s = stem(name);
        if let Some(speed) = benchmarks
            .iter()
            .find(|o| o.name().ends_with("_s") && stem(o.name()) == s)
        {
            let distance = analysis.distance_between(name, speed.name())?;
            pairs.push(PairDistance {
                stem: s.to_string(),
                rate: name.to_string(),
                speed: speed.name().to_string(),
                distance,
            });
        }
    }
    pairs.sort_by(|a, b| b.distance.partial_cmp(&a.distance).expect("finite"));
    Ok(pairs)
}

/// Splits pairs into (divergent, similar) around the median distance —
/// mirroring the paper's qualitative split in §IV-D.
pub fn divergent_pairs(pairs: &[PairDistance]) -> (Vec<&PairDistance>, Vec<&PairDistance>) {
    if pairs.is_empty() {
        return (Vec::new(), Vec::new());
    }
    let mut distances: Vec<f64> = pairs.iter().map(|p| p.distance).collect();
    distances.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let median = distances[distances.len() / 2];
    pairs.iter().partition(|p| p.distance > median)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::Campaign;
    use horizon_uarch::MachineConfig;
    use horizon_workloads::cpu2017;

    #[test]
    fn stem_parsing() {
        assert_eq!(stem("638.imagick_s"), "imagick");
        assert_eq!(stem("538.imagick_r"), "imagick");
        assert_eq!(stem("pr-web"), "pr-web");
    }

    fn fp_analysis() -> (SimilarityAnalysis, Vec<Benchmark>) {
        let mut benchmarks = cpu2017::rate_fp();
        benchmarks.extend(cpu2017::speed_fp());
        let r = Campaign::quick().measure(
            &benchmarks,
            &[MachineConfig::skylake_i7_6700(), MachineConfig::sparc_t4()],
        );
        (SimilarityAnalysis::from_campaign(&r).unwrap(), benchmarks)
    }

    #[test]
    fn fp_pairs_found_and_sorted() {
        let (analysis, benchmarks) = fp_analysis();
        let pairs = rate_speed_distances(&analysis, &benchmarks).unwrap();
        // 9 FP stems exist in both rate and speed versions.
        assert_eq!(pairs.len(), 9);
        for w in pairs.windows(2) {
            assert!(w[0].distance >= w[1].distance);
        }
        // Rate-only benchmarks (namd, parest, povray, blender) have no pair.
        assert!(!pairs.iter().any(|p| p.stem == "namd"));
    }

    #[test]
    fn imagick_or_bwaves_diverge_most_nab_or_wrf_least() {
        // §IV-D: imagick has the largest rate/speed linkage distance and
        // bwaves also diverges (memory size); nab/wrf/cactuBSSN are similar.
        let (analysis, benchmarks) = fp_analysis();
        let pairs = rate_speed_distances(&analysis, &benchmarks).unwrap();
        let pos = |s: &str| pairs.iter().position(|p| p.stem == s).unwrap();
        let divergent = pos("imagick").min(pos("bwaves"));
        let similar = pos("nab").max(pos("wrf")).max(pos("cactuBSSN"));
        assert!(
            divergent < similar,
            "{:?}",
            pairs
                .iter()
                .map(|p| (&p.stem, p.distance))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn divergent_split_partitions() {
        let (analysis, benchmarks) = fp_analysis();
        let pairs = rate_speed_distances(&analysis, &benchmarks).unwrap();
        let (div, sim) = divergent_pairs(&pairs);
        assert_eq!(div.len() + sim.len(), pairs.len());
        assert!(!div.is_empty() && !sim.is_empty());
    }
}
