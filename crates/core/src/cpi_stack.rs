//! CPI-stack reporting (Figure 1).
//!
//! Breaks each benchmark's Skylake CPI into the top-down components and
//! renders the stacked-bar chart as text.

use serde::{Deserialize, Serialize};

use crate::campaign::CampaignResult;
use crate::CoreError;

/// One benchmark's CPI stack row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StackRow {
    /// Benchmark name.
    pub benchmark: String,
    /// Issue-limited base cycles.
    pub base: f64,
    /// Front-end stall cycles per instruction.
    pub frontend: f64,
    /// Branch-mispredict cycles per instruction.
    pub bad_speculation: f64,
    /// Back-end memory stall cycles per instruction.
    pub memory: f64,
    /// Core (dependency/long-latency) stall cycles per instruction.
    pub core: f64,
}

impl StackRow {
    /// Total CPI.
    pub fn total(&self) -> f64 {
        self.base + self.frontend + self.bad_speculation + self.memory + self.core
    }

    /// Name of the largest non-base component.
    pub fn dominant(&self) -> &'static str {
        let parts = [
            ("frontend", self.frontend),
            ("bad_speculation", self.bad_speculation),
            ("memory", self.memory),
            ("core", self.core),
        ];
        parts
            .into_iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .expect("non-empty")
            .0
    }
}

/// Extracts the CPI stacks of every workload on one machine of a campaign.
///
/// # Errors
///
/// Returns [`CoreError::NotFound`] for an unknown machine name.
pub fn cpi_stacks(result: &CampaignResult, machine: &str) -> Result<Vec<StackRow>, CoreError> {
    let m = result
        .machines()
        .iter()
        .position(|n| n == machine)
        .ok_or_else(|| CoreError::NotFound {
            kind: "machine",
            name: machine.to_string(),
        })?;
    Ok(result
        .workloads()
        .iter()
        .enumerate()
        .map(|(w, name)| {
            let s = result.at(w, m).counters.cpi_stack;
            StackRow {
                benchmark: name.clone(),
                base: s.base,
                frontend: s.frontend,
                bad_speculation: s.bad_speculation,
                memory: s.memory,
                core: s.core,
            }
        })
        .collect())
}

/// Renders the stacks as horizontal text bars (Figure 1 in ASCII): `#` base,
/// `F` front-end, `B` bad speculation, `M` memory, `C` core; one column per
/// `cpi_per_char` cycles.
pub fn render_stacks(rows: &[StackRow], cpi_per_char: f64) -> String {
    let width = rows.iter().map(|r| r.benchmark.len()).max().unwrap_or(0);
    let mut out = String::new();
    for r in rows {
        let seg = |v: f64| (v / cpi_per_char).round() as usize;
        out.push_str(&format!("{:<width$} |", r.benchmark));
        out.push_str(&"#".repeat(seg(r.base)));
        out.push_str(&"F".repeat(seg(r.frontend)));
        out.push_str(&"B".repeat(seg(r.bad_speculation)));
        out.push_str(&"M".repeat(seg(r.memory)));
        out.push_str(&"C".repeat(seg(r.core)));
        out.push_str(&format!(" {:.2}\n", r.total()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::Campaign;
    use horizon_uarch::MachineConfig;
    use horizon_workloads::cpu2017;

    fn rows() -> Vec<StackRow> {
        let benchmarks: Vec<_> = cpu2017::rate_int()
            .into_iter()
            .filter(|b| {
                [
                    "505.mcf_r",
                    "520.omnetpp_r",
                    "548.exchange2_r",
                    "538.imagick_r",
                ]
                .contains(&b.name())
            })
            .chain(
                cpu2017::rate_fp()
                    .into_iter()
                    .filter(|b| b.name() == "538.imagick_r"),
            )
            .collect();
        // Component dominance needs a stable-statistics window.
        let r = Campaign {
            instructions: 150_000,
            warmup: 40_000,
            seed: 42,
            ..Campaign::default()
        }
        .measure(&benchmarks, &[MachineConfig::skylake_i7_6700()]);
        cpi_stacks(&r, "Intel Core i7-6700").unwrap()
    }

    #[test]
    fn stack_totals_are_positive_and_consistent() {
        for r in rows() {
            assert!(r.total() > 0.0);
            assert!(r.base > 0.0);
            assert!(r.frontend >= 0.0 && r.memory >= 0.0);
        }
    }

    #[test]
    fn mcf_and_omnetpp_are_memory_dominated() {
        // §II-B1 / Fig 1: mcf and omnetpp spend their time in the memory
        // back end; imagick is core-bound (dependencies).
        let rows = rows();
        let find = |n: &str| rows.iter().find(|r| r.benchmark == n).unwrap();
        assert_eq!(find("505.mcf_r").dominant(), "memory");
        assert_eq!(find("520.omnetpp_r").dominant(), "memory");
        assert_eq!(find("538.imagick_r").dominant(), "core");
    }

    #[test]
    fn unknown_machine_errors() {
        let benchmarks = &cpu2017::rate_int()[..1];
        let r = Campaign::quick().measure(benchmarks, &[MachineConfig::skylake_i7_6700()]);
        assert!(cpi_stacks(&r, "nope").is_err());
    }

    #[test]
    fn render_contains_bars_and_totals() {
        let art = render_stacks(&rows(), 0.02);
        assert!(art.contains('#'));
        assert!(art.contains("505.mcf_r"));
        for line in art.lines() {
            assert!(line.contains('|'));
        }
    }
}
