//! Schema-versioned structured reports (`report_v1`).
//!
//! Every experiment renders a plain-text report (see [`crate::report`]);
//! `repro serve` additionally exposes a machine-readable JSON view of the
//! same content. [`ReportV1`] is that view: it is *derived from the
//! rendered text* by [`ReportV1::from_text`], so the structured report can
//! never disagree with the text report, and the `?format=text` path stays
//! byte-identical to batch stdout by construction.
//!
//! # Schema stability
//!
//! * `schema_version` is [`REPORT_SCHEMA_VERSION`] and is bumped on any
//!   breaking field change. [`ReportV1::from_json`] rejects versions it
//!   does not understand instead of misreading them.
//! * Consumers must tolerate unknown fields: deserialization looks fields
//!   up by name and ignores extras, so additive evolution is free.

use serde::{Deserialize, Serialize};

/// Version of the structured report schema. Bumped on breaking changes.
pub const REPORT_SCHEMA_VERSION: u32 = 1;

/// One rendered table: a header row plus data rows, cells as the exact
/// strings the text report prints (units and formatting included).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReportTableV1 {
    /// The non-empty line immediately preceding the table in the text
    /// report (a caption like `Table V: …`), empty when the table opens
    /// the report.
    pub section: String,
    /// Column headers, left to right.
    pub columns: Vec<String>,
    /// Data rows; each row has exactly `columns.len()` cells.
    pub rows: Vec<Vec<String>>,
}

/// A representative subset called out by the report (`… (subset: a, b, c)`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubsetV1 {
    /// What the subset covers (e.g. a sub-suite name).
    pub context: String,
    /// Member benchmark names.
    pub members: Vec<String>,
}

/// A summary error statistic (`average error X%, max Y%`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErrorStatV1 {
    /// The report context the statistic belongs to (nearest preceding
    /// caption or subset line).
    pub context: String,
    /// Average error, percent.
    pub average_pct: f64,
    /// Maximum error, percent.
    pub max_pct: f64,
}

/// A structured, schema-versioned experiment report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReportV1 {
    /// Always [`REPORT_SCHEMA_VERSION`] for reports built by this crate.
    pub schema_version: u32,
    /// Canonical experiment id (e.g. `table1`).
    pub experiment: String,
    /// Report title (the first non-empty line of the text report).
    pub title: String,
    /// Every table in the report, in order of appearance.
    pub tables: Vec<ReportTableV1>,
    /// Representative subsets named by the report, in order.
    pub subsets: Vec<SubsetV1>,
    /// Error statistics named by the report, in order.
    pub errors: Vec<ErrorStatV1>,
    /// Remaining non-table lines (captions, scatter art, annotations), in
    /// order — nothing from the text report is silently dropped.
    pub notes: Vec<String>,
}

/// True for the all-dash rule `format_table` prints under its header.
fn is_separator(line: &str) -> bool {
    line.len() >= 3 && line.chars().all(|c| c == '-')
}

/// Splits a rendered table line into cells on runs of 2+ spaces.
fn split_cells(line: &str) -> Vec<String> {
    line.split("  ")
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect()
}

/// Parses `average error X%, max Y%` lines.
fn parse_error_stat(line: &str) -> Option<(f64, f64)> {
    let rest = line.trim().strip_prefix("average error ")?;
    let (avg, rest) = rest.split_once("%, max ")?;
    let max = rest.trim_end().strip_suffix('%')?;
    Some((avg.trim().parse().ok()?, max.trim().parse().ok()?))
}

/// Parses `context (subset: a, b, c)` lines.
fn parse_subset(line: &str) -> Option<SubsetV1> {
    let (context, rest) = line.split_once("(subset: ")?;
    let members = rest.strip_suffix(')')?;
    Some(SubsetV1 {
        context: context.trim().to_string(),
        members: members.split(", ").map(str::to_string).collect(),
    })
}

impl ReportV1 {
    /// Builds the structured view of a rendered text report.
    ///
    /// Tables are recognized by `format_table`'s layout (a header line
    /// followed by an all-dash rule); subset and error callouts by their
    /// fixed phrasing. Everything else lands in `notes` verbatim, so the
    /// structured report carries the full content of the text report.
    pub fn from_text(experiment: &str, text: &str) -> ReportV1 {
        let lines: Vec<&str> = text.lines().collect();
        let mut report = ReportV1 {
            schema_version: REPORT_SCHEMA_VERSION,
            experiment: experiment.to_string(),
            title: String::new(),
            tables: Vec::new(),
            subsets: Vec::new(),
            errors: Vec::new(),
            notes: Vec::new(),
        };
        let mut context = String::new();
        let mut i = 0;
        while i < lines.len() {
            let line = lines[i];
            // A table: `header / ---- / rows…` — the header is the line
            // *before* the separator.
            if i + 1 < lines.len() && is_separator(lines[i + 1]) && !line.trim().is_empty() {
                let columns = split_cells(line);
                let mut rows = Vec::new();
                let mut j = i + 2;
                while j < lines.len() && !lines[j].trim().is_empty() && !is_separator(lines[j]) {
                    let mut cells = split_cells(lines[j]);
                    cells.resize(columns.len(), String::new());
                    rows.push(cells);
                    j += 1;
                }
                report.tables.push(ReportTableV1 {
                    section: context.clone(),
                    columns,
                    rows,
                });
                i = j;
                continue;
            }
            if line.trim().is_empty() {
                i += 1;
                continue;
            }
            if report.title.is_empty() {
                report.title = line.to_string();
                context = line.to_string();
                i += 1;
                continue;
            }
            if let Some(subset) = parse_subset(line) {
                context = subset.context.clone();
                report.subsets.push(subset);
            } else if let Some((average_pct, max_pct)) = parse_error_stat(line) {
                report.errors.push(ErrorStatV1 {
                    context: context.clone(),
                    average_pct,
                    max_pct,
                });
            } else {
                context = line.to_string();
            }
            report.notes.push(line.to_string());
            i += 1;
        }
        report
    }

    /// Checks the schema version.
    ///
    /// # Errors
    ///
    /// Returns a message naming both versions when the report was written
    /// by a different (e.g. future) schema.
    pub fn validate(&self) -> Result<(), String> {
        if self.schema_version == REPORT_SCHEMA_VERSION {
            Ok(())
        } else {
            Err(format!(
                "unsupported report schema version {} (this reader understands {})",
                self.schema_version, REPORT_SCHEMA_VERSION
            ))
        }
    }

    /// Parses a JSON report and enforces the schema-version guard.
    ///
    /// # Errors
    ///
    /// Returns a message when the JSON is malformed or the version is not
    /// [`REPORT_SCHEMA_VERSION`].
    pub fn from_json(json: &str) -> Result<ReportV1, String> {
        let report: ReportV1 = serde_json::from_str(json).map_err(|e| e.to_string())?;
        report.validate()?;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::format_table;

    fn sample_text() -> String {
        let table = format_table(
            &["Benchmark", "CPI"],
            &[
                vec!["600.perlbench_s".into(), "1.12".into()],
                vec!["605.mcf_s".into(), "2.40".into()],
            ],
        );
        format!(
            "Table X: sample characterization\n\n{table}\nINT-speed (subset: 605.mcf_s, 625.x264_s)\naverage error 4.2%, max 9.9%\n"
        )
    }

    #[test]
    fn from_text_extracts_title_tables_subsets_and_errors() {
        let r = ReportV1::from_text("tablex", &sample_text());
        assert_eq!(r.schema_version, REPORT_SCHEMA_VERSION);
        assert_eq!(r.experiment, "tablex");
        assert_eq!(r.title, "Table X: sample characterization");
        assert_eq!(r.tables.len(), 1);
        assert_eq!(r.tables[0].section, "Table X: sample characterization");
        assert_eq!(r.tables[0].columns, vec!["Benchmark", "CPI"]);
        assert_eq!(r.tables[0].rows.len(), 2);
        assert_eq!(r.tables[0].rows[1], vec!["605.mcf_s", "2.40"]);
        assert_eq!(r.subsets.len(), 1);
        assert_eq!(r.subsets[0].context, "INT-speed");
        assert_eq!(r.subsets[0].members, vec!["605.mcf_s", "625.x264_s"]);
        assert_eq!(r.errors.len(), 1);
        assert_eq!(r.errors[0].context, "INT-speed");
        assert!((r.errors[0].average_pct - 4.2).abs() < 1e-12);
        assert!((r.errors[0].max_pct - 9.9).abs() < 1e-12);
    }

    #[test]
    fn every_row_matches_the_column_count() {
        let r = ReportV1::from_text("tablex", &sample_text());
        for table in &r.tables {
            for row in &table.rows {
                assert_eq!(row.len(), table.columns.len());
            }
        }
    }

    #[test]
    fn json_round_trip_preserves_the_report() {
        let r = ReportV1::from_text("tablex", &sample_text());
        let json = serde_json::to_string_pretty(&r).unwrap();
        let back = ReportV1::from_json(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn unknown_fields_are_tolerated() {
        let r = ReportV1::from_text("tablex", "Title only\n");
        let json = serde_json::to_string(&r).unwrap();
        let extended = json.replacen('{', "{\"added_in_v2\": true, ", 1);
        let back = ReportV1::from_json(&extended).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn future_schema_versions_are_rejected() {
        let r = ReportV1::from_text("tablex", "Title only\n");
        let json = serde_json::to_string(&r).unwrap();
        let bumped = json.replacen(
            &format!("\"schema_version\":{REPORT_SCHEMA_VERSION}"),
            &format!("\"schema_version\":{}", REPORT_SCHEMA_VERSION + 1),
            1,
        );
        assert_ne!(bumped, json, "the version field must be present to bump");
        let err = ReportV1::from_json(&bumped).unwrap_err();
        assert!(err.contains("unsupported report schema version"), "{err}");
    }
}
