use std::fmt;

use horizon_cluster::ClusterError;
use horizon_stats::StatsError;

/// Errors produced by the analysis pipeline.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// An underlying statistics failure.
    Stats(StatsError),
    /// An underlying clustering failure.
    Cluster(ClusterError),
    /// A benchmark or machine name was not found in a campaign result.
    NotFound {
        /// What was looked up.
        kind: &'static str,
        /// The missing name.
        name: String,
    },
    /// An analysis was asked for an impossible shape (e.g. subset size 0).
    InvalidArgument {
        /// Human-readable description.
        reason: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Stats(e) => write!(f, "statistics error: {e}"),
            CoreError::Cluster(e) => write!(f, "clustering error: {e}"),
            CoreError::NotFound { kind, name } => write!(f, "{kind} not found: {name}"),
            CoreError::InvalidArgument { reason } => write!(f, "invalid argument: {reason}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Stats(e) => Some(e),
            CoreError::Cluster(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StatsError> for CoreError {
    fn from(e: StatsError) -> Self {
        CoreError::Stats(e)
    }
}

impl From<ClusterError> for CoreError {
    fn from(e: ClusterError) -> Self {
        CoreError::Cluster(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let e: CoreError = StatsError::Empty.into();
        assert!(e.to_string().contains("statistics"));
        let e: CoreError = ClusterError::Empty.into();
        assert!(e.to_string().contains("clustering"));
        let e = CoreError::NotFound {
            kind: "benchmark",
            name: "nope".into(),
        };
        assert!(e.to_string().contains("nope"));
        assert!(std::error::Error::source(&e).is_none());
    }
}
