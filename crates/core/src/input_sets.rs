//! Representative input-set selection (§IV-C, Figures 7/8, Table VII).
//!
//! For each multi-input benchmark, all input-set variants plus the
//! runtime-weighted *aggregate* profile are measured and projected into a
//! common PC space; the representative input is the one closest to the
//! aggregate.

use horizon_stats::euclidean;
use horizon_uarch::MachineConfig;
use horizon_workloads::{inputs, Benchmark};
use serde::{Deserialize, Serialize};

use crate::campaign::Campaign;
use crate::similarity::SimilarityAnalysis;
use crate::CoreError;

/// Outcome of input-set analysis for one benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InputSetChoice {
    /// Benchmark name.
    pub benchmark: String,
    /// 1-based index of the representative input set (Table VII).
    pub representative: usize,
    /// Distances of every input set to the aggregate, in input order.
    pub distances_to_aggregate: Vec<f64>,
}

/// Analyzes the input sets of several benchmarks in one shared PC space.
///
/// All input-set variants and aggregates of all `benchmarks` are measured
/// together (as in the paper's Figure 7, which holds every INT benchmark's
/// inputs in one dendrogram), then each benchmark's representative input is
/// the variant closest to its aggregate.
///
/// Returns the shared [`SimilarityAnalysis`] (for dendrogram rendering) and
/// one [`InputSetChoice`] per multi-input benchmark.
///
/// # Errors
///
/// Propagates campaign/PCA/clustering failures.
pub fn analyze_input_sets(
    benchmarks: &[Benchmark],
    machines: &[MachineConfig],
    campaign: &Campaign,
) -> Result<(SimilarityAnalysis, Vec<InputSetChoice>), CoreError> {
    let mut profiles = Vec::new();
    let mut groups: Vec<(String, Vec<usize>, usize)> = Vec::new(); // (bench, input idxs, aggregate idx)
    for b in benchmarks {
        let sets = inputs::input_sets(b);
        if sets.len() < 2 {
            // Single-input benchmarks appear in the space under their name.
            profiles.push(b.profile().clone());
            continue;
        }
        let mut idxs = Vec::with_capacity(sets.len());
        for s in &sets {
            idxs.push(profiles.len());
            profiles.push(s.profile.clone());
        }
        let agg_idx = profiles.len();
        profiles.push(inputs::aggregate_profile(b));
        groups.push((b.name().to_string(), idxs, agg_idx));
    }

    let result = campaign.measure_profiles(&profiles, machines);
    let analysis = SimilarityAnalysis::from_campaign(&result)?;

    let scores = analysis.pca().scores();
    let choices = groups
        .into_iter()
        .map(|(benchmark, idxs, agg)| {
            let agg_row = scores.row(agg);
            let distances: Vec<f64> = idxs
                .iter()
                .map(|&i| euclidean(scores.row(i), agg_row))
                .collect();
            let best = distances
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite distances"))
                .map(|(i, _)| i + 1)
                .expect("at least two inputs");
            InputSetChoice {
                benchmark,
                representative: best,
                distances_to_aggregate: distances,
            }
        })
        .collect();
    Ok((analysis, choices))
}

#[cfg(test)]
mod tests {
    use super::*;
    use horizon_workloads::cpu2017;

    fn machines() -> Vec<MachineConfig> {
        vec![MachineConfig::skylake_i7_6700(), MachineConfig::sparc_t4()]
    }

    fn pick(benchmarks: &[Benchmark]) -> (SimilarityAnalysis, Vec<InputSetChoice>) {
        analyze_input_sets(benchmarks, &machines(), &Campaign::quick()).unwrap()
    }

    #[test]
    fn multi_input_benchmarks_get_choices() {
        let all = cpu2017::rate_int();
        let subset: Vec<Benchmark> = all
            .into_iter()
            .filter(|b| ["502.gcc_r", "505.mcf_r", "557.xz_r"].contains(&b.name()))
            .collect();
        let (analysis, choices) = pick(&subset);
        // gcc (5 inputs) and xz (2 inputs) are analyzed; mcf is single-input.
        assert_eq!(choices.len(), 2);
        let gcc = choices.iter().find(|c| c.benchmark == "502.gcc_r").unwrap();
        assert_eq!(gcc.distances_to_aggregate.len(), 5);
        assert!(gcc.representative >= 1 && gcc.representative <= 5);
        // The space contains inputs + aggregates + the single-input bench.
        assert!(analysis.names().iter().any(|n| n == "505.mcf_r"));
        assert!(analysis.names().iter().any(|n| n == "502.gcc_r.is3"));
        assert!(analysis.names().iter().any(|n| n == "502.gcc_r.aggregate"));
    }

    #[test]
    fn representative_is_argmin_distance() {
        let all = cpu2017::rate_int();
        let subset: Vec<Benchmark> = all
            .into_iter()
            .filter(|b| b.name() == "525.x264_r")
            .collect();
        let (_, choices) = pick(&subset);
        let c = &choices[0];
        let min = c
            .distances_to_aggregate
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        assert_eq!(c.distances_to_aggregate[c.representative - 1], min);
    }

    #[test]
    fn gcc_inputs_cluster_tightly() {
        // §IV-C: "the five different input sets of 502.gcc_r are clustered
        // together" — every gcc input is closer to its aggregate than any
        // other workload in the space is.
        let all = cpu2017::rate_int();
        let subset: Vec<Benchmark> = all
            .into_iter()
            .filter(|b| ["502.gcc_r", "505.mcf_r"].contains(&b.name()))
            .collect();
        let (analysis, choices) = pick(&subset);
        let gcc = choices.iter().find(|c| c.benchmark == "502.gcc_r").unwrap();
        let max_input_dist = gcc
            .distances_to_aggregate
            .iter()
            .cloned()
            .fold(0.0, f64::max);
        let mcf_dist = analysis
            .distance_between("505.mcf_r", "502.gcc_r.aggregate")
            .unwrap();
        assert!(max_input_dist < mcf_dist);
    }
}
