//! Benchmark classification by branch and memory behavior (§IV-E,
//! Figures 9/10).
//!
//! The paper re-runs the PCA on restricted metric sets (branch metrics
//! only, data-cache metrics only, instruction-cache metrics only) and reads
//! the extremes off the first two PCs.

use horizon_cluster::Linkage;
use horizon_stats::Retention;
use serde::{Deserialize, Serialize};

use crate::campaign::CampaignResult;
use crate::metrics::Metric;
use crate::similarity::SimilarityAnalysis;
use crate::CoreError;

/// Which behavioral aspect to classify on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Aspect {
    /// Branch-behavior metrics (Figure 9).
    Branch,
    /// Data-cache metrics (Figure 10, PC1/PC2).
    DataCache,
    /// Instruction-cache metrics (Figure 10, PC3/PC4).
    InstructionCache,
}

impl Aspect {
    fn metrics(self) -> Vec<Metric> {
        match self {
            Aspect::Branch => Metric::branch_set(),
            Aspect::DataCache => Metric::dcache_set(),
            Aspect::InstructionCache => Metric::icache_set(),
        }
    }
}

/// A classification of workloads along one behavioral aspect.
#[derive(Debug, Clone)]
pub struct Classification {
    aspect: Aspect,
    analysis: SimilarityAnalysis,
}

impl Classification {
    /// Runs the restricted-metric PCA for the aspect. All retained PCs are
    /// kept via the Kaiser criterion, as in §IV-E.
    ///
    /// # Errors
    ///
    /// Propagates PCA/clustering failures.
    pub fn new(result: &CampaignResult, aspect: Aspect) -> Result<Self, CoreError> {
        let analysis = SimilarityAnalysis::from_campaign_with(
            result,
            &aspect.metrics(),
            Retention::Kaiser,
            Linkage::Average,
        )?;
        Ok(Classification { aspect, analysis })
    }

    /// The aspect this classification covers.
    pub fn aspect(&self) -> Aspect {
        self.aspect
    }

    /// The underlying restricted-metric similarity analysis.
    pub fn analysis(&self) -> &SimilarityAnalysis {
        &self.analysis
    }

    /// Workloads ranked by their coordinate on a retained PC (descending).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidArgument`] for non-retained PCs.
    pub fn ranked_by_pc(&self, pc: usize) -> Result<Vec<(String, f64)>, CoreError> {
        let k = self.analysis.pca().components();
        if pc >= k {
            return Err(CoreError::InvalidArgument {
                reason: format!("PC{} not retained (have {k})", pc + 1),
            });
        }
        let scores = self.analysis.pca().scores();
        let mut out: Vec<(String, f64)> = self
            .analysis
            .names()
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), scores[(i, pc)]))
            .collect();
        out.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite scores"));
        Ok(out)
    }

    /// The top `k` workloads by a raw metric averaged across machines —
    /// the quantity behind statements like "leela and mcf suffer from the
    /// highest branch misprediction rates".
    pub fn extremes_by_metric(
        &self,
        result: &CampaignResult,
        metric: Metric,
        k: usize,
    ) -> Vec<(String, f64)> {
        let machines = result.machines().len().max(1);
        let mut rows: Vec<(String, f64)> = result
            .workloads()
            .iter()
            .enumerate()
            .map(|(w, name)| {
                let mean = (0..machines)
                    .map(|m| metric.extract(result.at(w, m)))
                    .sum::<f64>()
                    / machines as f64;
                (name.clone(), mean)
            })
            .collect();
        rows.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite metrics"));
        rows.truncate(k);
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::Campaign;
    use horizon_uarch::MachineConfig;
    use horizon_workloads::cpu2017;

    fn campaign() -> CampaignResult {
        // Rate INT + a couple of FP outliers, on two machines.
        let mut benchmarks = cpu2017::rate_int();
        benchmarks.extend(
            cpu2017::rate_fp()
                .into_iter()
                .filter(|b| b.name().contains("fotonik") || b.name().contains("namd")),
        );
        // The branch/mcf claims need a stable-statistics window.
        Campaign {
            instructions: 200_000,
            warmup: 50_000,
            seed: 42,
            ..Campaign::default()
        }
        .measure(
            &benchmarks,
            &[
                MachineConfig::skylake_i7_6700(),
                MachineConfig::opteron_2435(),
            ],
        )
    }

    #[test]
    fn branch_classification_flags_leela_and_mcf() {
        // §IV-E / Fig 9: leela and mcf have the highest mispredict rates.
        let r = campaign();
        let c = Classification::new(&r, Aspect::Branch).unwrap();
        let top: Vec<String> = c
            .extremes_by_metric(&r, Metric::BranchMpki, 3)
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        assert!(
            top.iter().any(|n| n.contains("leela")),
            "top mispredictors: {top:?}"
        );
        assert!(
            top.iter().any(|n| n.contains("mcf") || n.contains("xz")),
            "top mispredictors: {top:?}"
        );
    }

    #[test]
    fn dcache_classification_flags_fotonik() {
        // §IV-E / Fig 10: fotonik3d has the highest data-cache miss rates.
        let r = campaign();
        let c = Classification::new(&r, Aspect::DataCache).unwrap();
        let top = c.extremes_by_metric(&r, Metric::L1DMpki, 2);
        assert!(top.iter().any(|(n, _)| n.contains("fotonik3d")), "{top:?}");
    }

    #[test]
    fn icache_classification_flags_perlbench_gcc() {
        // §IV-E / Fig 10: perlbench and gcc have the highest I-side activity.
        let r = campaign();
        let c = Classification::new(&r, Aspect::InstructionCache).unwrap();
        let top: Vec<String> = c
            .extremes_by_metric(&r, Metric::L1IMpki, 3)
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        assert!(
            top.iter()
                .any(|n| n.contains("perlbench") || n.contains("gcc") || n.contains("xalancbmk")),
            "{top:?}"
        );
    }

    #[test]
    fn pc_ranking_has_all_workloads() {
        let r = campaign();
        let c = Classification::new(&r, Aspect::Branch).unwrap();
        let ranked = c.ranked_by_pc(0).unwrap();
        assert_eq!(ranked.len(), r.workloads().len());
        for w in ranked.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        assert!(c.ranked_by_pc(99).is_err());
    }
}
