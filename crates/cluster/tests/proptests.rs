//! Property-based tests for hierarchical clustering invariants.

use horizon_cluster::{
    cluster, cophenetic_correlation, cophenetic_matrix, select_representatives, Linkage,
};
use horizon_stats::{DistanceMatrix, Matrix, Metric};
use proptest::prelude::*;

fn observations(max_n: usize) -> impl Strategy<Value = Matrix> {
    (2..=max_n).prop_flat_map(|n| {
        proptest::collection::vec(proptest::collection::vec(-100.0..100.0f64, 3), n..=n)
            .prop_map(|rows| Matrix::from_rows(rows).expect("well-formed"))
    })
}

fn linkage() -> impl Strategy<Value = Linkage> {
    prop_oneof![
        Just(Linkage::Single),
        Just(Linkage::Complete),
        Just(Linkage::Average),
        Just(Linkage::Weighted),
        Just(Linkage::Ward),
    ]
}

proptest! {
    #[test]
    fn merge_count_and_final_size(x in observations(12), link in linkage()) {
        let d = DistanceMatrix::from_observations(&x, Metric::Euclidean);
        let tree = cluster(&d, link).unwrap();
        prop_assert_eq!(tree.merges().len(), x.rows() - 1);
        prop_assert_eq!(tree.merges().last().unwrap().size, x.rows());
    }

    #[test]
    fn cut_into_partitions_all_leaves(x in observations(12), link in linkage(), k in 1usize..12) {
        let d = DistanceMatrix::from_observations(&x, Metric::Euclidean);
        let tree = cluster(&d, link).unwrap();
        let clusters = tree.cut_into(k);
        let mut all: Vec<usize> = clusters.iter().flatten().cloned().collect();
        all.sort_unstable();
        let expect: Vec<usize> = (0..x.rows()).collect();
        prop_assert_eq!(all, expect);
        prop_assert_eq!(clusters.len(), k.clamp(1, x.rows()));
    }

    #[test]
    fn cut_at_is_monotone_in_threshold(x in observations(10), link in linkage()) {
        let d = DistanceMatrix::from_observations(&x, Metric::Euclidean);
        let tree = cluster(&d, link).unwrap();
        let h = tree.max_height();
        let mut prev = usize::MAX;
        for step in 0..=4 {
            let t = h * step as f64 / 4.0;
            let count = tree.cut_at(t).len();
            prop_assert!(count <= prev);
            prev = count;
        }
        prop_assert_eq!(prev, 1);
    }

    #[test]
    fn monotone_heights_for_non_inverting_linkages(x in observations(12)) {
        // Single/complete/average linkages never produce inversions.
        for link in [Linkage::Single, Linkage::Complete, Linkage::Average] {
            let d = DistanceMatrix::from_observations(&x, Metric::Euclidean);
            let tree = cluster(&d, link).unwrap();
            for w in tree.merges().windows(2) {
                prop_assert!(w[1].height >= w[0].height - 1e-9, "{}", link);
            }
        }
    }

    #[test]
    fn single_linkage_first_merge_is_closest_pair(x in observations(12)) {
        let d = DistanceMatrix::from_observations(&x, Metric::Euclidean);
        let tree = cluster(&d, Linkage::Single).unwrap();
        let (_, _, closest) = d.closest_pair().unwrap();
        prop_assert!((tree.merges()[0].height - closest).abs() < 1e-9);
    }

    #[test]
    fn cophenetic_ultrametric(x in observations(9), link in linkage()) {
        let d = DistanceMatrix::from_observations(&x, Metric::Euclidean);
        let tree = cluster(&d, link).unwrap();
        let coph = cophenetic_matrix(&tree).unwrap();
        let n = x.rows();
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    prop_assert!(
                        coph.get(i, j) <= coph.get(i, k).max(coph.get(k, j)) + 1e-9
                    );
                }
            }
        }
    }

    #[test]
    fn cophenetic_correlation_in_bounds(x in observations(10), link in linkage()) {
        let d = DistanceMatrix::from_observations(&x, Metric::Euclidean);
        let tree = cluster(&d, link).unwrap();
        let c = cophenetic_correlation(&tree, &d).unwrap();
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&c));
    }

    #[test]
    fn representatives_are_members(x in observations(12), link in linkage(), k in 1usize..6) {
        let d = DistanceMatrix::from_observations(&x, Metric::Euclidean);
        let tree = cluster(&d, link).unwrap();
        let clusters = tree.cut_into(k);
        let reps = select_representatives(&clusters, &d).unwrap();
        prop_assert_eq!(reps.len(), clusters.len());
        for (rep, members) in reps.iter().zip(&clusters) {
            prop_assert!(members.contains(&rep.index));
            // The medoid's mean distance is minimal among members.
            for &m in members {
                let mean = if members.len() == 1 { 0.0 } else {
                    members.iter().filter(|&&o| o != m).map(|&o| d.get(m, o)).sum::<f64>()
                        / (members.len() - 1) as f64
                };
                prop_assert!(rep.mean_distance <= mean + 1e-9);
            }
        }
    }

    #[test]
    fn leaf_order_is_permutation(x in observations(12), link in linkage()) {
        let d = DistanceMatrix::from_observations(&x, Metric::Euclidean);
        let tree = cluster(&d, link).unwrap();
        let mut order = tree.leaf_order();
        order.sort_unstable();
        let expect: Vec<usize> = (0..x.rows()).collect();
        prop_assert_eq!(order, expect);
    }
}
