//! Silhouette scores: how well a flat clustering separates observations.
//!
//! Used to sanity-check the paper's k = 3 subset cuts: a positive mean
//! silhouette means members sit closer to their own cluster than to the
//! nearest foreign one.

use horizon_stats::DistanceMatrix;

use crate::ClusterError;

/// Mean silhouette coefficient of a flat clustering, in `[-1, 1]`.
///
/// Observations in singleton clusters contribute 0, following the standard
/// convention.
///
/// # Errors
///
/// Returns [`ClusterError::Empty`] for an empty clustering and
/// [`ClusterError::LabelMismatch`] if the clusters do not cover exactly the
/// matrix's observations.
pub fn mean_silhouette(
    clusters: &[Vec<usize>],
    distances: &DistanceMatrix,
) -> Result<f64, ClusterError> {
    let scores = silhouette_scores(clusters, distances)?;
    Ok(scores.iter().sum::<f64>() / scores.len() as f64)
}

/// Per-observation silhouette coefficients, indexed by observation.
///
/// # Errors
///
/// See [`mean_silhouette`].
pub fn silhouette_scores(
    clusters: &[Vec<usize>],
    distances: &DistanceMatrix,
) -> Result<Vec<f64>, ClusterError> {
    let n = distances.len();
    if clusters.is_empty() || n == 0 {
        return Err(ClusterError::Empty);
    }
    let covered: usize = clusters.iter().map(Vec::len).sum();
    let mut owner = vec![usize::MAX; n];
    for (c, members) in clusters.iter().enumerate() {
        for &m in members {
            if m >= n || owner[m] != usize::MAX {
                return Err(ClusterError::LabelMismatch {
                    observations: n,
                    labels: covered,
                });
            }
            owner[m] = c;
        }
    }
    if covered != n {
        return Err(ClusterError::LabelMismatch {
            observations: n,
            labels: covered,
        });
    }

    let mean_dist_to = |i: usize, members: &[usize]| -> f64 {
        let others: Vec<f64> = members
            .iter()
            .filter(|&&j| j != i)
            .map(|&j| distances.get(i, j))
            .collect();
        if others.is_empty() {
            0.0
        } else {
            others.iter().sum::<f64>() / others.len() as f64
        }
    };

    Ok((0..n)
        .map(|i| {
            let own = &clusters[owner[i]];
            if own.len() < 2 {
                return 0.0;
            }
            let a = mean_dist_to(i, own);
            let b = clusters
                .iter()
                .enumerate()
                .filter(|(c, _)| *c != owner[i])
                .map(|(_, members)| mean_dist_to(i, members))
                .fold(f64::INFINITY, f64::min);
            if b.is_infinite() {
                0.0
            } else if a.max(b) > 0.0 {
                (b - a) / a.max(b)
            } else {
                0.0
            }
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use horizon_stats::{Matrix, Metric};

    fn dm(rows: Vec<Vec<f64>>) -> DistanceMatrix {
        DistanceMatrix::from_observations(&Matrix::from_rows(rows).unwrap(), Metric::Euclidean)
    }

    #[test]
    fn well_separated_clusters_score_high() {
        let d = dm(vec![vec![0.0], vec![0.5], vec![10.0], vec![10.5]]);
        let s = mean_silhouette(&[vec![0, 1], vec![2, 3]], &d).unwrap();
        assert!(s > 0.8, "{s}");
    }

    #[test]
    fn wrong_assignment_scores_negative() {
        let d = dm(vec![vec![0.0], vec![0.5], vec![10.0], vec![10.5]]);
        // Swap one member across: its silhouette goes negative.
        let scores = silhouette_scores(&[vec![0, 2], vec![1, 3]], &d).unwrap();
        assert!(scores.iter().any(|&s| s < 0.0), "{scores:?}");
    }

    #[test]
    fn singletons_contribute_zero() {
        let d = dm(vec![vec![0.0], vec![5.0], vec![10.0]]);
        let scores = silhouette_scores(&[vec![0], vec![1], vec![2]], &d).unwrap();
        assert_eq!(scores, vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn rejects_bad_partitions() {
        let d = dm(vec![vec![0.0], vec![1.0]]);
        assert!(mean_silhouette(&[], &d).is_err());
        assert!(mean_silhouette(&[vec![0]], &d).is_err()); // misses obs 1
        assert!(mean_silhouette(&[vec![0, 0], vec![1]], &d).is_err()); // dup
        assert!(mean_silhouette(&[vec![0, 5]], &d).is_err()); // out of range
    }
}
