//! Linkage criteria and their Lance–Williams update coefficients.

use serde::{Deserialize, Serialize};

/// Criterion for the distance between two clusters during agglomeration.
///
/// All criteria are implemented through the Lance–Williams recurrence: when
/// clusters `a` and `b` merge into `ab`, the distance from `ab` to any other
/// cluster `c` is
///
/// ```text
/// d(ab, c) = αa·d(a,c) + αb·d(b,c) + β·d(a,b) + γ·|d(a,c) − d(b,c)|
/// ```
///
/// with coefficients depending on the criterion (and, for Average/Ward, on
/// cluster sizes).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Linkage {
    /// Minimum pairwise distance (chaining-prone, fine-grained).
    Single,
    /// Maximum pairwise distance (compact clusters).
    Complete,
    /// Unweighted average of pairwise distances (UPGMA) — the default used
    /// for benchmark subsetting, following Phansalkar et al. (ISCA'07).
    #[default]
    Average,
    /// Weighted average (WPGMA): both children contribute equally regardless
    /// of size.
    Weighted,
    /// Ward's minimum-variance criterion. Heights grow with merged variance;
    /// requires squared-Euclidean semantics for textbook interpretation but
    /// is well-defined on any dissimilarity.
    Ward,
}

impl Linkage {
    /// Lance–Williams coefficients `(αa, αb, β, γ)` for merging clusters of
    /// sizes `na` and `nb`, relative to a cluster of size `nc`.
    pub(crate) fn coefficients(self, na: f64, nb: f64, nc: f64) -> (f64, f64, f64, f64) {
        match self {
            Linkage::Single => (0.5, 0.5, 0.0, -0.5),
            Linkage::Complete => (0.5, 0.5, 0.0, 0.5),
            Linkage::Average => {
                let nab = na + nb;
                (na / nab, nb / nab, 0.0, 0.0)
            }
            Linkage::Weighted => (0.5, 0.5, 0.0, 0.0),
            Linkage::Ward => {
                let denom = na + nb + nc;
                ((na + nc) / denom, (nb + nc) / denom, -nc / denom, 0.0)
            }
        }
    }

    /// All supported linkage criteria, useful for ablation sweeps.
    pub fn all() -> [Linkage; 5] {
        [
            Linkage::Single,
            Linkage::Complete,
            Linkage::Average,
            Linkage::Weighted,
            Linkage::Ward,
        ]
    }
}

impl std::fmt::Display for Linkage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Linkage::Single => "single",
            Linkage::Complete => "complete",
            Linkage::Average => "average",
            Linkage::Weighted => "weighted",
            Linkage::Ward => "ward",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn average_coefficients_weight_by_size() {
        let (aa, ab, b, g) = Linkage::Average.coefficients(3.0, 1.0, 5.0);
        assert_eq!(aa, 0.75);
        assert_eq!(ab, 0.25);
        assert_eq!(b, 0.0);
        assert_eq!(g, 0.0);
    }

    #[test]
    fn single_and_complete_differ_only_in_gamma() {
        let s = Linkage::Single.coefficients(2.0, 2.0, 2.0);
        let c = Linkage::Complete.coefficients(2.0, 2.0, 2.0);
        assert_eq!(s.0, c.0);
        assert_eq!(s.3, -0.5);
        assert_eq!(c.3, 0.5);
    }

    #[test]
    fn ward_coefficients_sum_sensibly() {
        let (aa, ab, b, _) = Linkage::Ward.coefficients(1.0, 1.0, 1.0);
        // αa + αb + β = 1 for Ward.
        assert!((aa + ab + b - 1.0).abs() < 1e-12);
    }

    #[test]
    fn display_names() {
        assert_eq!(Linkage::Average.to_string(), "average");
        assert_eq!(Linkage::Ward.to_string(), "ward");
    }

    #[test]
    fn all_lists_every_variant() {
        assert_eq!(Linkage::all().len(), 5);
    }
}
