//! Agglomerative hierarchical clustering for workload subsetting.
//!
//! The HPCA'18 study clusters benchmarks by Euclidean distance in PC space,
//! draws dendrograms, cuts them at a linkage distance to obtain the desired
//! subset size, and picks one *representative* benchmark per cluster ("the
//! benchmark with the shortest linkage distance", §IV-A). This crate
//! implements that machinery:
//!
//! * [`Linkage`] — single / complete / average / weighted / Ward, updated via
//!   the Lance–Williams recurrence,
//! * [`Dendrogram`] — the merge tree with per-merge heights,
//! * [`Dendrogram::cut_at`] / [`Dendrogram::cut_into`] — flat clusterings,
//! * [`select_representatives`] — one medoid-style exemplar per cluster,
//! * [`cophenetic_matrix`] / [`cophenetic_correlation`] — linkage quality,
//! * [`render_ascii`] — a terminal dendrogram like the paper's Figures 2–4,
//! * [`kmeans`] — deterministic Lloyd k-means, used by `horizon-simpoint`
//!   to cluster trace intervals into phases.
//!
//! # Example
//!
//! ```
//! use horizon_cluster::{cluster, Linkage};
//! use horizon_stats::{DistanceMatrix, Matrix, Metric};
//!
//! let points = Matrix::from_rows(vec![
//!     vec![0.0], vec![0.1], vec![5.0], vec![5.2], vec![99.0],
//! ])?;
//! let d = DistanceMatrix::from_observations(&points, Metric::Euclidean);
//! let tree = cluster(&d, Linkage::Average)?;
//! let clusters = tree.cut_into(3);
//! assert_eq!(clusters.len(), 3); // {0,1}, {2,3}, {4}
//! # Ok::<(), horizon_cluster::ClusterError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod agglomerative;
mod cophenetic;
mod dendrogram;
mod error;
mod kmeans;
mod linkage;
mod render;
mod representative;
mod silhouette;

pub use agglomerative::cluster;
pub use cophenetic::{cophenetic_correlation, cophenetic_matrix};
pub use dendrogram::{Dendrogram, Merge};
pub use error::ClusterError;
pub use kmeans::{kmeans, KMeans};
pub use linkage::Linkage;
pub use render::{render_ascii, RenderOptions};
pub use representative::{select_representatives, Representative};
pub use silhouette::{mean_silhouette, silhouette_scores};
