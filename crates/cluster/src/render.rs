//! ASCII dendrogram rendering, in the style of the paper's Figures 2–4:
//! benchmarks on the y-axis, linkage distance on the x-axis.

use crate::{ClusterError, Dendrogram};

/// Options controlling dendrogram rendering.
#[derive(Debug, Clone, PartialEq)]
pub struct RenderOptions {
    /// Width in characters of the distance axis (excluding labels).
    pub width: usize,
    /// Whether to print a linkage-distance axis below the tree.
    pub axis: bool,
}

impl Default for RenderOptions {
    fn default() -> Self {
        RenderOptions {
            width: 60,
            axis: true,
        }
    }
}

/// Renders a dendrogram as ASCII art.
///
/// Leaves are listed top-to-bottom in dendrogram display order; branch
/// positions are proportional to linkage distance, growing to the right.
///
/// # Errors
///
/// Returns [`ClusterError::LabelMismatch`] if `labels.len() != tree.len()`
/// and [`ClusterError::Empty`] for an empty tree.
///
/// # Example
///
/// ```
/// use horizon_cluster::{cluster, render_ascii, Linkage, RenderOptions};
/// use horizon_stats::{DistanceMatrix, Matrix, Metric};
///
/// let pts = Matrix::from_rows(vec![vec![0.0], vec![1.0], vec![8.0]])?;
/// let d = DistanceMatrix::from_observations(&pts, Metric::Euclidean);
/// let tree = cluster(&d, Linkage::Average)?;
/// let art = render_ascii(&tree, &["a", "b", "c"], &RenderOptions::default())?;
/// assert!(art.contains("a "));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn render_ascii<S: AsRef<str>>(
    tree: &Dendrogram,
    labels: &[S],
    options: &RenderOptions,
) -> Result<String, ClusterError> {
    let n = tree.len();
    if n == 0 {
        return Err(ClusterError::Empty);
    }
    if labels.len() != n {
        return Err(ClusterError::LabelMismatch {
            observations: n,
            labels: labels.len(),
        });
    }
    let label_width = labels
        .iter()
        .map(|l| l.as_ref().chars().count())
        .max()
        .unwrap_or(0);

    if n == 1 {
        return Ok(format!("{}\n", labels[0].as_ref()));
    }

    let order = tree.leaf_order();
    // row of each node id (leaves: their display row; internal: midpoint).
    let total_nodes = n + tree.merges().len();
    let mut row = vec![0.0f64; total_nodes];
    for (display_row, &leaf) in order.iter().enumerate() {
        row[leaf] = display_row as f64;
    }
    let max_h = tree.max_height().max(f64::MIN_POSITIVE);
    let width = options.width.max(10);
    let xpos = |h: f64| -> usize { ((h / max_h) * (width - 1) as f64).round() as usize };

    // Character grid: one text row per leaf.
    let mut grid = vec![vec![' '; width + 1]; n];
    // Column of each node (leaves at 0, internal nodes at their height).
    let mut col = vec![0usize; total_nodes];

    for (k, m) in tree.merges().iter().enumerate() {
        let id = n + k;
        let x = xpos(m.height).max(1);
        col[id] = x;
        row[id] = (row[m.left] + row[m.right]) / 2.0;

        for &child in &[m.left, m.right] {
            let r = row[child].round() as usize;
            let from = col[child];
            for c in grid[r].iter_mut().take(x).skip(from) {
                if *c == ' ' {
                    *c = '-';
                }
            }
        }
        // Vertical connector at column x between the two child rows.
        let r1 = row[m.left].round() as usize;
        let r2 = row[m.right].round() as usize;
        let (lo, hi) = if r1 < r2 { (r1, r2) } else { (r2, r1) };
        for (r, row) in grid.iter_mut().enumerate().take(hi + 1).skip(lo) {
            row[x] = if r == lo || r == hi {
                '+'
            } else if row[x] == ' ' || row[x] == '-' {
                '|'
            } else {
                row[x]
            };
        }
    }

    let mut out = String::new();
    for (display_row, &leaf) in order.iter().enumerate() {
        let label = labels[leaf].as_ref();
        out.push_str(&format!("{label:<label_width$} "));
        let line: String = grid[display_row].iter().collect();
        out.push_str(line.trim_end());
        out.push('\n');
    }
    if options.axis {
        out.push_str(&format!("{:<label_width$} ", ""));
        out.push_str(&"=".repeat(width));
        out.push('\n');
        out.push_str(&format!(
            "{:<label_width$} 0{:>w$.2}\n",
            "",
            max_h,
            w = width - 1
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{cluster, Linkage};
    use horizon_stats::{DistanceMatrix, Matrix, Metric};

    fn tree3() -> Dendrogram {
        let pts = Matrix::from_rows(vec![vec![0.0], vec![1.0], vec![8.0]]).unwrap();
        let d = DistanceMatrix::from_observations(&pts, Metric::Euclidean);
        cluster(&d, Linkage::Average).unwrap()
    }

    #[test]
    fn renders_all_labels() {
        let art = render_ascii(
            &tree3(),
            &["alpha", "beta", "gamma"],
            &RenderOptions::default(),
        )
        .unwrap();
        assert!(art.contains("alpha"));
        assert!(art.contains("beta"));
        assert!(art.contains("gamma"));
    }

    #[test]
    fn close_leaves_are_adjacent_lines() {
        let art = render_ascii(&tree3(), &["a", "b", "c"], &RenderOptions::default()).unwrap();
        let lines: Vec<&str> = art.lines().collect();
        let pa = lines.iter().position(|l| l.starts_with('a')).unwrap();
        let pb = lines.iter().position(|l| l.starts_with('b')).unwrap();
        assert_eq!(pa.abs_diff(pb), 1);
    }

    #[test]
    fn axis_can_be_disabled() {
        let opts = RenderOptions {
            axis: false,
            ..Default::default()
        };
        let art = render_ascii(&tree3(), &["a", "b", "c"], &opts).unwrap();
        assert!(!art.contains('='));
    }

    #[test]
    fn label_mismatch_errors() {
        assert!(matches!(
            render_ascii(&tree3(), &["a"], &RenderOptions::default()),
            Err(ClusterError::LabelMismatch { .. })
        ));
    }

    #[test]
    fn single_leaf_renders_label_only() {
        let pts = Matrix::from_rows(vec![vec![0.0]]).unwrap();
        let d = DistanceMatrix::from_observations(&pts, Metric::Euclidean);
        let tree = cluster(&d, Linkage::Average).unwrap();
        let art = render_ascii(&tree, &["solo"], &RenderOptions::default()).unwrap();
        assert_eq!(art, "solo\n");
    }

    #[test]
    fn branches_present() {
        let art = render_ascii(&tree3(), &["a", "b", "c"], &RenderOptions::default()).unwrap();
        assert!(art.contains('-'));
        assert!(art.contains('+'));
    }
}
