//! The agglomerative clustering algorithm (Lance–Williams updates).

use horizon_stats::DistanceMatrix;

use crate::dendrogram::{Dendrogram, Merge};
use crate::{ClusterError, Linkage};

/// Hierarchically clusters the observations described by a pairwise
/// [`DistanceMatrix`].
///
/// Runs the classic O(n³) agglomerative algorithm with Lance–Williams
/// distance updates — entirely adequate for benchmark-suite-sized inputs
/// (n ≤ ~100) and simple enough to audit against textbook definitions.
///
/// # Errors
///
/// Returns [`ClusterError::Empty`] if the distance matrix covers zero
/// observations.
///
/// # Example
///
/// ```
/// use horizon_cluster::{cluster, Linkage};
/// use horizon_stats::{DistanceMatrix, Matrix, Metric};
///
/// let pts = Matrix::from_rows(vec![vec![0.0, 0.0], vec![0.0, 1.0], vec![9.0, 9.0]])?;
/// let d = DistanceMatrix::from_observations(&pts, Metric::Euclidean);
/// let tree = cluster(&d, Linkage::Complete)?;
/// // The two nearby points merge first, at distance 1.
/// assert_eq!(tree.merges()[0].height, 1.0);
/// # Ok::<(), horizon_cluster::ClusterError>(())
/// ```
pub fn cluster(distances: &DistanceMatrix, linkage: Linkage) -> Result<Dendrogram, ClusterError> {
    let n = distances.len();
    let mut span = horizon_telemetry::span("cluster.linkage");
    span.record("n", n);
    if n == 0 {
        return Err(ClusterError::Empty);
    }
    if n == 1 {
        return Ok(Dendrogram::new(1, linkage, Vec::new()));
    }

    // Working distance matrix between *active* clusters, full square for
    // simplicity. active[i] is the current node id of cluster slot i, or
    // usize::MAX when the slot has been merged away.
    let mut dist = vec![vec![0.0f64; n]; n];
    for (i, row) in dist.iter_mut().enumerate() {
        for (j, cell) in row.iter_mut().enumerate() {
            *cell = distances.get(i, j);
        }
    }
    let mut node_id: Vec<usize> = (0..n).collect();
    let mut size: Vec<usize> = vec![1; n];
    let mut alive: Vec<bool> = vec![true; n];
    let mut merges = Vec::with_capacity(n - 1);

    for step in 0..n - 1 {
        // Find the closest pair of alive slots. Ties break toward the
        // smallest indices, making results deterministic.
        let mut best: Option<(usize, usize, f64)> = None;
        for (i, row) in dist.iter().enumerate() {
            if !alive[i] {
                continue;
            }
            for (j, &d) in row.iter().enumerate().skip(i + 1) {
                if !alive[j] {
                    continue;
                }
                if best.is_none_or(|(_, _, bd)| d < bd) {
                    best = Some((i, j, d));
                }
            }
        }
        let (a, b, h) = best.expect("at least two alive clusters");

        // Record the merge; the new cluster occupies slot `a`.
        let new_id = n + step;
        merges.push(Merge {
            left: node_id[a],
            right: node_id[b],
            height: h,
            size: size[a] + size[b],
        });

        let (na, nb) = (size[a] as f64, size[b] as f64);
        for c in 0..n {
            if !alive[c] || c == a || c == b {
                continue;
            }
            let (aa, ab, beta, gamma) = linkage.coefficients(na, nb, size[c] as f64);
            let dac = dist[a][c];
            let dbc = dist[b][c];
            let dab = dist[a][b];
            let updated = aa * dac + ab * dbc + beta * dab + gamma * (dac - dbc).abs();
            dist[a][c] = updated;
            dist[c][a] = updated;
        }
        size[a] += size[b];
        node_id[a] = new_id;
        alive[b] = false;
    }

    Ok(Dendrogram::new(n, linkage, merges))
}

#[cfg(test)]
mod tests {
    use super::*;
    use horizon_stats::{Matrix, Metric};

    fn dm(rows: Vec<Vec<f64>>) -> DistanceMatrix {
        let m = Matrix::from_rows(rows).unwrap();
        DistanceMatrix::from_observations(&m, Metric::Euclidean)
    }

    #[test]
    fn empty_input_errors() {
        let d = DistanceMatrix::from_condensed(0, vec![]).unwrap();
        assert!(matches!(
            cluster(&d, Linkage::Average),
            Err(ClusterError::Empty)
        ));
    }

    #[test]
    fn two_points_single_merge() {
        let d = dm(vec![vec![0.0], vec![3.0]]);
        let tree = cluster(&d, Linkage::Average).unwrap();
        assert_eq!(tree.merges().len(), 1);
        let m = tree.merges()[0];
        assert_eq!(m.height, 3.0);
        assert_eq!(m.size, 2);
        assert_eq!((m.left, m.right), (0, 1));
    }

    #[test]
    fn single_linkage_chains() {
        // Points 0-1-2 spaced 1 apart, point 3 far away. Single linkage
        // chains the line at height 1 before touching the outlier.
        let d = dm(vec![vec![0.0], vec![1.0], vec![2.0], vec![50.0]]);
        let tree = cluster(&d, Linkage::Single).unwrap();
        assert!((tree.merges()[0].height - 1.0).abs() < 1e-12);
        assert!((tree.merges()[1].height - 1.0).abs() < 1e-12);
        assert!(tree.merges()[2].height > 40.0);
    }

    #[test]
    fn complete_linkage_heights_exceed_single() {
        let d = dm(vec![vec![0.0], vec![1.0], vec![2.0], vec![3.5]]);
        let single = cluster(&d, Linkage::Single).unwrap();
        let complete = cluster(&d, Linkage::Complete).unwrap();
        assert!(complete.max_height() >= single.max_height());
    }

    #[test]
    fn average_linkage_known_height() {
        // Clusters {0,1} at 0/1 and {2} at 10: average distance from {0,1}
        // to {2} is (10 + 9) / 2 = 9.5.
        let d = dm(vec![vec![0.0], vec![1.0], vec![10.0]]);
        let tree = cluster(&d, Linkage::Average).unwrap();
        assert!((tree.merges()[1].height - 9.5).abs() < 1e-12);
    }

    #[test]
    fn ward_prefers_balanced_compact_merges() {
        let d = dm(vec![vec![0.0], vec![0.2], vec![10.0], vec![10.2]]);
        let tree = cluster(&d, Linkage::Ward).unwrap();
        // The two tight pairs merge first under Ward.
        let firsts: Vec<(usize, usize)> = tree
            .merges()
            .iter()
            .take(2)
            .map(|m| (m.left, m.right))
            .collect();
        assert!(firsts.contains(&(0, 1)));
        assert!(firsts.contains(&(2, 3)));
    }

    #[test]
    fn deterministic_under_ties() {
        // Equidistant points: results must be reproducible run-to-run.
        let d = dm(vec![vec![0.0, 0.0], vec![1.0, 0.0], vec![0.5, 0.866]]);
        let t1 = cluster(&d, Linkage::Average).unwrap();
        let t2 = cluster(&d, Linkage::Average).unwrap();
        assert_eq!(t1.merges(), t2.merges());
        // Ties break to the lowest index pair.
        assert_eq!(t1.merges()[0].left, 0);
    }

    #[test]
    fn merge_sizes_accumulate_to_n() {
        let d = dm(vec![vec![0.0], vec![2.0], vec![5.0], vec![9.0], vec![14.0]]);
        for link in Linkage::all() {
            let tree = cluster(&d, link).unwrap();
            assert_eq!(tree.merges().last().unwrap().size, 5, "{link}");
        }
    }

    #[test]
    fn all_linkages_produce_valid_trees() {
        let d = dm(vec![
            vec![0.0, 0.0],
            vec![1.0, 1.0],
            vec![5.0, 0.0],
            vec![6.0, 1.0],
            vec![0.0, 8.0],
            vec![1.0, 9.0],
        ]);
        for link in Linkage::all() {
            let tree = cluster(&d, link).unwrap();
            assert_eq!(tree.merges().len(), 5, "{link}");
            let cut = tree.cut_into(3);
            assert_eq!(cut.len(), 3, "{link}");
            // The three natural pairs should be recovered by every linkage.
            assert!(cut.contains(&vec![0, 1]), "{link}: {cut:?}");
            assert!(cut.contains(&vec![2, 3]), "{link}: {cut:?}");
            assert!(cut.contains(&vec![4, 5]), "{link}: {cut:?}");
        }
    }
}
