use std::fmt;

use horizon_stats::StatsError;

/// Errors produced by clustering operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ClusterError {
    /// Clustering requires at least one observation.
    Empty,
    /// A label list did not match the number of observations.
    LabelMismatch {
        /// Number of observations in the tree.
        observations: usize,
        /// Number of labels supplied.
        labels: usize,
    },
    /// An underlying statistics error (e.g. malformed distance matrix).
    Stats(StatsError),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::Empty => write!(f, "clustering requires at least one observation"),
            ClusterError::LabelMismatch {
                observations,
                labels,
            } => write!(
                f,
                "label count {labels} does not match observation count {observations}"
            ),
            ClusterError::Stats(e) => write!(f, "statistics error: {e}"),
        }
    }
}

impl std::error::Error for ClusterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClusterError::Stats(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StatsError> for ClusterError {
    fn from(e: StatsError) -> Self {
        ClusterError::Stats(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        assert!(ClusterError::Empty.to_string().contains("at least one"));
        let lm = ClusterError::LabelMismatch {
            observations: 3,
            labels: 2,
        };
        assert!(lm.to_string().contains("label count 2"));
    }

    #[test]
    fn from_stats_error() {
        let e: ClusterError = StatsError::Empty.into();
        assert!(matches!(e, ClusterError::Stats(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
