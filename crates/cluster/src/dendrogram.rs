//! The dendrogram (merge tree) produced by agglomerative clustering.

use serde::{Deserialize, Serialize};

use crate::Linkage;

/// One agglomeration step.
///
/// Node ids follow the scipy convention: ids `0..n` are the original
/// observations (leaves); merge `k` creates node `n + k`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Merge {
    /// First merged node id.
    pub left: usize,
    /// Second merged node id.
    pub right: usize,
    /// Linkage distance at which the merge happened (the dendrogram height).
    pub height: f64,
    /// Number of leaves under the new node.
    pub size: usize,
}

/// A full hierarchical clustering of `n` observations: `n − 1` merges.
///
/// # Example
///
/// ```
/// use horizon_cluster::{cluster, Linkage};
/// use horizon_stats::{DistanceMatrix, Matrix, Metric};
///
/// let pts = Matrix::from_rows(vec![vec![0.0], vec![1.0], vec![10.0]])?;
/// let d = DistanceMatrix::from_observations(&pts, Metric::Euclidean);
/// let tree = cluster(&d, Linkage::Single)?;
/// assert_eq!(tree.len(), 3);
/// assert_eq!(tree.merges().len(), 2);
/// // Cutting between the two merge heights separates the outlier.
/// let cut = tree.cut_at(5.0);
/// assert_eq!(cut.len(), 2);
/// # Ok::<(), horizon_cluster::ClusterError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dendrogram {
    n: usize,
    linkage: Linkage,
    merges: Vec<Merge>,
}

impl Dendrogram {
    pub(crate) fn new(n: usize, linkage: Linkage, merges: Vec<Merge>) -> Self {
        debug_assert_eq!(merges.len(), n.saturating_sub(1));
        Dendrogram { n, linkage, merges }
    }

    /// Number of observations (leaves).
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the tree has no leaves (never produced by [`crate::cluster`]).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Linkage criterion used to build this tree.
    pub fn linkage(&self) -> Linkage {
        self.linkage
    }

    /// The merge sequence, in merge order (non-decreasing height for
    /// monotone linkages).
    pub fn merges(&self) -> &[Merge] {
        &self.merges
    }

    /// Height of the final merge — the scale of the whole dendrogram.
    ///
    /// Returns 0.0 for a single-observation tree.
    pub fn max_height(&self) -> f64 {
        self.merges.last().map_or(0.0, |m| m.height)
    }

    /// Cuts the tree at a linkage distance: merges with `height > threshold`
    /// are undone. Returns the clusters as sorted lists of leaf indices,
    /// ordered by each cluster's smallest leaf.
    ///
    /// This is the paper's "vertical line drawn at a linkage distance of
    /// 17.5" operation (§IV-A).
    pub fn cut_at(&self, threshold: f64) -> Vec<Vec<usize>> {
        // Union-find over leaves; apply merges with height <= threshold.
        let mut parent: Vec<usize> = (0..self.n).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        // Track a leaf exemplar for every internal node id.
        let mut node_leaf: Vec<usize> = (0..self.n).collect();
        for (k, m) in self.merges.iter().enumerate() {
            let la = node_leaf[m.left];
            let lb = node_leaf[m.right];
            node_leaf.push(la);
            if m.height <= threshold {
                let ra = find(&mut parent, la);
                let rb = find(&mut parent, lb);
                parent[ra] = rb;
            }
            debug_assert_eq!(node_leaf.len(), self.n + k + 1);
        }
        self.collect_clusters(&mut parent)
    }

    /// Cuts the tree into exactly `k` clusters (clamped to `1..=n`), by
    /// undoing the last `k − 1` merges.
    pub fn cut_into(&self, k: usize) -> Vec<Vec<usize>> {
        let mut span = horizon_telemetry::span("cluster.cut");
        span.record("k", k);
        span.record("n", self.n);
        let k = k.clamp(1, self.n.max(1));
        let keep = self.n - k; // number of merges to apply
        let mut parent: Vec<usize> = (0..self.n).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        let mut node_leaf: Vec<usize> = (0..self.n).collect();
        for (i, m) in self.merges.iter().enumerate() {
            let la = node_leaf[m.left];
            let lb = node_leaf[m.right];
            node_leaf.push(la);
            if i < keep {
                let ra = find(&mut parent, la);
                let rb = find(&mut parent, lb);
                parent[ra] = rb;
            }
        }
        self.collect_clusters(&mut parent)
    }

    /// The smallest threshold at which cutting yields at most `k` clusters.
    ///
    /// Useful for reporting "a vertical line drawn at distance X yields a
    /// subset of 3 benchmarks". Returns 0.0 when `k >= n`.
    pub fn threshold_for(&self, k: usize) -> f64 {
        if k >= self.n || self.merges.is_empty() {
            return 0.0;
        }
        let k = k.max(1);
        // Applying merges in order, after `n - k` merges we have k clusters.
        // The threshold is the height of the last merge applied.
        self.merges[self.n - k - 1].height
    }

    /// Leaf ordering for display: left-to-right traversal of the tree so
    /// that merged clusters are adjacent (as in published dendrograms).
    pub fn leaf_order(&self) -> Vec<usize> {
        if self.n == 0 {
            return Vec::new();
        }
        if self.merges.is_empty() {
            return vec![0];
        }
        // children[id] = (left, right) for internal nodes.
        let root = self.n + self.merges.len() - 1;
        let mut order = Vec::with_capacity(self.n);
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            if id < self.n {
                order.push(id);
            } else {
                let m = &self.merges[id - self.n];
                // Push right first so left is visited first.
                stack.push(m.right);
                stack.push(m.left);
            }
        }
        order
    }

    /// Height at which leaves `i` and `j` first end up in the same cluster
    /// (their cophenetic distance).
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of bounds.
    pub fn merge_height(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n, "leaf index out of bounds");
        if i == j {
            return 0.0;
        }
        // Walk merges; `members_of` maps node id -> leaves beneath it. Each
        // node is merged at most once, so its leaf list can be moved out.
        let mut members_of: Vec<Vec<usize>> = (0..self.n).map(|l| vec![l]).collect();
        for m in &self.merges {
            let left_leaves = std::mem::take(&mut members_of[m.left]);
            let right_leaves = std::mem::take(&mut members_of[m.right]);
            let li = left_leaves.contains(&i);
            let lj = left_leaves.contains(&j);
            let ri = right_leaves.contains(&i);
            let rj = right_leaves.contains(&j);
            if (li && rj) || (lj && ri) {
                return m.height;
            }
            let mut leaves = left_leaves;
            leaves.extend(right_leaves);
            members_of.push(leaves);
        }
        self.max_height()
    }

    /// Exports the tree in Newick format with branch lengths, for external
    /// tools (R's `ape`, iTOL, dendroscope).
    ///
    /// # Errors
    ///
    /// Returns an error message if `labels.len() != self.len()`.
    pub fn to_newick<S: AsRef<str>>(&self, labels: &[S]) -> Result<String, String> {
        if labels.len() != self.n {
            return Err(format!("{} labels for {} leaves", labels.len(), self.n));
        }
        if self.n == 1 {
            return Ok(format!("{};", labels[0].as_ref()));
        }
        // Height of each node (leaves at 0).
        let mut heights = vec![0.0f64; self.n + self.merges.len()];
        let mut repr: Vec<String> = labels
            .iter()
            .map(|l| l.as_ref().replace([' ', '(', ')', ',', ':', ';'], "_"))
            .collect();
        for (k, m) in self.merges.iter().enumerate() {
            let id = self.n + k;
            heights[id] = m.height;
            let bl = |child: usize| (m.height - heights[child]).max(0.0);
            let text = format!(
                "({}:{:.4},{}:{:.4})",
                repr[m.left],
                bl(m.left),
                repr[m.right],
                bl(m.right)
            );
            repr.push(text);
        }
        Ok(format!("{};", repr.last().expect("at least one merge")))
    }

    /// Suggests a cluster count by the largest relative gap between
    /// consecutive merge heights ("knee" heuristic): cutting just below the
    /// biggest jump separates well-formed clusters from forced merges.
    ///
    /// Returns 1 for trees with fewer than 3 leaves.
    pub fn suggest_cut(&self) -> usize {
        if self.n < 3 {
            return 1;
        }
        let mut best_k = 2;
        let mut best_gap = f64::NEG_INFINITY;
        // Merge i joins n-i clusters into n-i-1; the gap between merge i-1
        // and merge i belongs to a cut at k = n - i clusters.
        for i in 1..self.merges.len() {
            let gap = self.merges[i].height - self.merges[i - 1].height;
            if gap > best_gap {
                best_gap = gap;
                best_k = self.n - i;
            }
        }
        best_k.clamp(2, self.n)
    }

    fn collect_clusters(&self, parent: &mut [usize]) -> Vec<Vec<usize>> {
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        let mut groups: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
        for leaf in 0..self.n {
            let root = find(parent, leaf);
            groups.entry(root).or_default().push(leaf);
        }
        let mut clusters: Vec<Vec<usize>> = groups.into_values().collect();
        for c in &mut clusters {
            c.sort_unstable();
        }
        clusters.sort_by_key(|c| c[0]);
        clusters
    }
}

#[cfg(test)]
mod tests {
    use crate::{cluster, Linkage};
    use horizon_stats::{DistanceMatrix, Matrix, Metric};

    fn line_points() -> DistanceMatrix {
        let pts = Matrix::from_rows(vec![vec![0.0], vec![0.5], vec![4.0], vec![4.4], vec![20.0]])
            .unwrap();
        DistanceMatrix::from_observations(&pts, Metric::Euclidean)
    }

    #[test]
    fn merge_count_is_n_minus_1() {
        let tree = cluster(&line_points(), Linkage::Average).unwrap();
        assert_eq!(tree.len(), 5);
        assert_eq!(tree.merges().len(), 4);
    }

    #[test]
    fn cut_at_zero_gives_singletons() {
        let tree = cluster(&line_points(), Linkage::Average).unwrap();
        let cut = tree.cut_at(0.0);
        assert_eq!(cut.len(), 5);
        for (i, c) in cut.iter().enumerate() {
            assert_eq!(c, &vec![i]);
        }
    }

    #[test]
    fn cut_at_max_gives_one_cluster() {
        let tree = cluster(&line_points(), Linkage::Average).unwrap();
        let cut = tree.cut_at(tree.max_height());
        assert_eq!(cut.len(), 1);
        assert_eq!(cut[0], vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn cut_into_exact_k() {
        let tree = cluster(&line_points(), Linkage::Average).unwrap();
        for k in 1..=5 {
            assert_eq!(tree.cut_into(k).len(), k, "k={k}");
        }
        // Clamping.
        assert_eq!(tree.cut_into(0).len(), 1);
        assert_eq!(tree.cut_into(99).len(), 5);
    }

    #[test]
    fn natural_three_clusters() {
        let tree = cluster(&line_points(), Linkage::Average).unwrap();
        let cut = tree.cut_into(3);
        assert_eq!(cut, vec![vec![0, 1], vec![2, 3], vec![4]]);
    }

    #[test]
    fn threshold_for_matches_cut() {
        let tree = cluster(&line_points(), Linkage::Average).unwrap();
        for k in 1..5 {
            let t = tree.threshold_for(k);
            assert!(tree.cut_at(t).len() <= k, "k={k} t={t}");
        }
        assert_eq!(tree.threshold_for(5), 0.0);
    }

    #[test]
    fn leaf_order_is_permutation_with_adjacency() {
        let tree = cluster(&line_points(), Linkage::Average).unwrap();
        let order = tree.leaf_order();
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
        // 0 and 1 merge first, so they are adjacent in display order.
        let pos0 = order.iter().position(|&x| x == 0).unwrap();
        let pos1 = order.iter().position(|&x| x == 1).unwrap();
        assert_eq!(pos0.abs_diff(pos1), 1);
    }

    #[test]
    fn merge_height_reflects_topology() {
        let tree = cluster(&line_points(), Linkage::Single).unwrap();
        // 0,1 merge at 0.5; 2,3 at 0.4; {0,1} and {2,3} at 3.5; outlier last.
        assert!((tree.merge_height(0, 1) - 0.5).abs() < 1e-12);
        assert!((tree.merge_height(2, 3) - 0.4).abs() < 1e-12);
        assert!(tree.merge_height(0, 2) > tree.merge_height(0, 1));
        assert_eq!(tree.merge_height(4, 4), 0.0);
        assert!(tree.merge_height(0, 4) >= tree.merge_height(0, 2));
    }

    #[test]
    fn heights_non_decreasing_for_average_linkage() {
        let tree = cluster(&line_points(), Linkage::Average).unwrap();
        for w in tree.merges().windows(2) {
            assert!(w[1].height >= w[0].height - 1e-12);
        }
    }

    #[test]
    fn newick_round_shape() {
        let tree = cluster(&line_points(), Linkage::Average).unwrap();
        let nw = tree.to_newick(&["a", "b", "c", "d", "e"]).unwrap();
        assert!(nw.ends_with(';'));
        assert_eq!(nw.matches('(').count(), 4); // n-1 internal nodes
        for l in ["a", "b", "c", "d", "e"] {
            assert!(nw.contains(l));
        }
        // Branch lengths present.
        assert!(nw.contains(':'));
        // Label sanitization.
        let nw2 = tree
            .to_newick(&["a b", "c(d)", "e,f", "g:h", "i;j"])
            .unwrap();
        assert!(nw2.contains("a_b"));
        assert!(tree.to_newick(&["too", "few"]).is_err());
    }

    #[test]
    fn suggest_cut_finds_the_gap() {
        // Two tight pairs + one far outlier: the natural cut is 3 clusters
        // (the last-but-one merge gap dominates) or 2 (outlier split).
        let tree = cluster(&line_points(), Linkage::Average).unwrap();
        let k = tree.suggest_cut();
        assert!((2..=3).contains(&k), "{k}");
        // Degenerate trees.
        let pts = Matrix::from_rows(vec![vec![0.0], vec![1.0]]).unwrap();
        let d2 = DistanceMatrix::from_observations(&pts, Metric::Euclidean);
        assert_eq!(cluster(&d2, Linkage::Average).unwrap().suggest_cut(), 1);
    }

    #[test]
    fn single_observation_tree() {
        let pts = Matrix::from_rows(vec![vec![1.0]]).unwrap();
        let d = DistanceMatrix::from_observations(&pts, Metric::Euclidean);
        let tree = cluster(&d, Linkage::Average).unwrap();
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.max_height(), 0.0);
        assert_eq!(tree.cut_at(1.0), vec![vec![0]]);
        assert_eq!(tree.leaf_order(), vec![0]);
    }
}
