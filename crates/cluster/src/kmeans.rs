//! Deterministic Lloyd k-means for phase clustering.
//!
//! The SimPoint-style trace sampler (`horizon-simpoint`) clusters interval
//! behavior vectors into at most `k` phases. Unlike the suite-level
//! agglomerative pipeline, interval counts grow with the window length, so
//! the O(n²) dendrogram is the wrong tool; plain k-means over the (small,
//! fixed-dimension) behavior vectors is the classic SimPoint choice.
//!
//! Everything here is deterministic — no RNG:
//!
//! * initialization is farthest-first traversal seeded from observation 0,
//! * assignment ties break toward the lower centroid index,
//! * selection ties break toward the lower observation index.
//!
//! Given the same points in the same order, the clustering is bit-identical
//! across runs, platforms and thread counts.

use crate::ClusterError;

/// Result of a k-means run: flat assignments plus the final centroids.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeans {
    /// `assignments[i]` is the cluster index of observation `i`
    /// (in `0..centroids.len()`).
    pub assignments: Vec<usize>,
    /// Final cluster centroids (means of the assigned observations).
    pub centroids: Vec<Vec<f64>>,
    /// Lloyd iterations executed before convergence (or the cap).
    pub iterations: usize,
}

impl KMeans {
    /// Members of each cluster, sorted ascending, indexed by cluster.
    pub fn clusters(&self) -> Vec<Vec<usize>> {
        let mut clusters = vec![Vec::new(); self.centroids.len()];
        for (i, &c) in self.assignments.iter().enumerate() {
            clusters[c].push(i);
        }
        clusters
    }

    /// For each cluster, the member observation closest to its centroid —
    /// the phase *representative*. Ties break toward the lower index.
    pub fn medoids(&self, points: &[Vec<f64>]) -> Vec<usize> {
        self.clusters()
            .iter()
            .enumerate()
            .map(|(c, members)| {
                members
                    .iter()
                    .copied()
                    .min_by(|&a, &b| {
                        let da = squared_distance(&points[a], &self.centroids[c]);
                        let db = squared_distance(&points[b], &self.centroids[c]);
                        da.partial_cmp(&db)
                            .expect("finite distances")
                            .then(a.cmp(&b))
                    })
                    .expect("non-empty cluster")
            })
            .collect()
    }
}

const MAX_ITERATIONS: usize = 100;

/// Clusters `points` into at most `k` groups with deterministic Lloyd
/// iterations. `k` is clamped to the number of points; duplicate points
/// may leave fewer than `k` non-empty clusters, in which case the empty
/// ones are dropped (assignments are re-compacted), so every returned
/// cluster is non-empty.
///
/// # Errors
///
/// Returns [`ClusterError::Empty`] if `points` is empty or `k == 0`, and
/// [`ClusterError::LabelMismatch`] if the points have inconsistent
/// dimensions.
///
/// # Example
///
/// ```
/// use horizon_cluster::kmeans;
///
/// let pts = vec![vec![0.0], vec![0.2], vec![9.0], vec![9.1]];
/// let km = kmeans(&pts, 2)?;
/// assert_eq!(km.assignments[0], km.assignments[1]);
/// assert_eq!(km.assignments[2], km.assignments[3]);
/// assert_ne!(km.assignments[0], km.assignments[2]);
/// # Ok::<(), horizon_cluster::ClusterError>(())
/// ```
pub fn kmeans(points: &[Vec<f64>], k: usize) -> Result<KMeans, ClusterError> {
    if points.is_empty() || k == 0 {
        return Err(ClusterError::Empty);
    }
    let dim = points[0].len();
    if let Some(bad) = points.iter().position(|p| p.len() != dim) {
        return Err(ClusterError::LabelMismatch {
            observations: dim,
            labels: points[bad].len(),
        });
    }
    let k = k.min(points.len());

    // Farthest-first initialization from observation 0: spreads the seeds
    // across the occupied space without randomness.
    let mut centroids: Vec<Vec<f64>> = vec![points[0].clone()];
    while centroids.len() < k {
        let (next, spread) = points
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let nearest = centroids
                    .iter()
                    .map(|c| squared_distance(p, c))
                    .fold(f64::INFINITY, f64::min);
                (i, nearest)
            })
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite").then(b.0.cmp(&a.0)))
            .expect("non-empty points");
        if spread == 0.0 {
            break; // all remaining points coincide with a centroid
        }
        centroids.push(points[next].clone());
    }

    let mut assignments = assign(points, &centroids);
    let mut iterations = 0;
    while iterations < MAX_ITERATIONS {
        iterations += 1;
        // Recompute centroids as member means; empty clusters keep their
        // previous centroid (they are compacted away at the end).
        let mut sums = vec![vec![0.0; dim]; centroids.len()];
        let mut counts = vec![0usize; centroids.len()];
        for (p, &c) in points.iter().zip(&assignments) {
            counts[c] += 1;
            for (s, v) in sums[c].iter_mut().zip(p) {
                *s += v;
            }
        }
        for (c, count) in counts.iter().enumerate() {
            if *count > 0 {
                for s in sums[c].iter_mut() {
                    *s /= *count as f64;
                }
                centroids[c] = sums[c].clone();
            }
        }
        let next = assign(points, &centroids);
        if next == assignments {
            break;
        }
        assignments = next;
    }

    // Compact away empty clusters so callers can rely on non-emptiness.
    let mut remap = vec![usize::MAX; centroids.len()];
    let mut kept = Vec::new();
    for &c in &assignments {
        if remap[c] == usize::MAX {
            remap[c] = kept.len();
            kept.push(centroids[c].clone());
        }
    }
    let assignments = assignments.into_iter().map(|c| remap[c]).collect();

    Ok(KMeans {
        assignments,
        centroids: kept,
        iterations,
    })
}

fn assign(points: &[Vec<f64>], centroids: &[Vec<f64>]) -> Vec<usize> {
    points
        .iter()
        .map(|p| {
            centroids
                .iter()
                .enumerate()
                .min_by(|(ai, a), (bi, b)| {
                    squared_distance(p, a)
                        .partial_cmp(&squared_distance(p, b))
                        .expect("finite distances")
                        .then(ai.cmp(bi))
                })
                .expect("non-empty centroids")
                .0
        })
        .collect()
}

fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> Vec<Vec<f64>> {
        vec![
            vec![0.0, 0.0],
            vec![0.1, 0.0],
            vec![0.0, 0.2],
            vec![8.0, 8.0],
            vec![8.1, 8.0],
        ]
    }

    #[test]
    fn separates_two_blobs() {
        let km = kmeans(&two_blobs(), 2).unwrap();
        assert_eq!(km.centroids.len(), 2);
        assert_eq!(km.assignments[0], km.assignments[1]);
        assert_eq!(km.assignments[1], km.assignments[2]);
        assert_eq!(km.assignments[3], km.assignments[4]);
        assert_ne!(km.assignments[0], km.assignments[3]);
    }

    #[test]
    fn deterministic_across_runs() {
        let a = kmeans(&two_blobs(), 2).unwrap();
        let b = kmeans(&two_blobs(), 2).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn k_clamped_to_observation_count() {
        let pts = vec![vec![1.0], vec![2.0]];
        let km = kmeans(&pts, 10).unwrap();
        assert_eq!(km.centroids.len(), 2);
        assert_eq!(km.assignments, vec![0, 1]);
    }

    #[test]
    fn duplicate_points_collapse_clusters() {
        let pts = vec![vec![3.0]; 4];
        let km = kmeans(&pts, 3).unwrap();
        assert_eq!(km.centroids.len(), 1);
        assert_eq!(km.assignments, vec![0, 0, 0, 0]);
    }

    #[test]
    fn medoids_pick_closest_members() {
        let pts = two_blobs();
        let km = kmeans(&pts, 2).unwrap();
        let medoids = km.medoids(&pts);
        assert_eq!(medoids.len(), 2);
        // Each medoid belongs to the cluster it represents.
        for (c, &m) in medoids.iter().enumerate() {
            assert_eq!(km.assignments[m], c);
        }
    }

    #[test]
    fn clusters_lists_sorted_members() {
        let km = kmeans(&two_blobs(), 2).unwrap();
        let clusters = km.clusters();
        assert_eq!(clusters.len(), 2);
        let mut all: Vec<usize> = clusters.concat();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4]);
        for members in &clusters {
            assert!(!members.is_empty());
            assert!(members.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn single_point_single_cluster() {
        let km = kmeans(&[vec![5.0]], 1).unwrap();
        assert_eq!(km.assignments, vec![0]);
        assert_eq!(km.centroids, vec![vec![5.0]]);
    }

    #[test]
    fn errors_on_empty_and_mismatched() {
        assert!(matches!(kmeans(&[], 2), Err(ClusterError::Empty)));
        assert!(matches!(kmeans(&[vec![1.0]], 0), Err(ClusterError::Empty)));
        assert!(matches!(
            kmeans(&[vec![1.0], vec![1.0, 2.0]], 2),
            Err(ClusterError::LabelMismatch { .. })
        ));
    }
}
