//! Cophenetic distances — how faithfully a dendrogram preserves the input
//! distances. Used to pick a linkage criterion defensibly (DESIGN.md §5.3).

use horizon_stats::{DistanceMatrix, StatsError};

use crate::{ClusterError, Dendrogram};

/// Pairwise cophenetic distance matrix of a dendrogram: entry `(i, j)` is
/// the height at which leaves `i` and `j` first share a cluster.
///
/// # Errors
///
/// Returns [`ClusterError::Empty`] for an empty tree.
pub fn cophenetic_matrix(tree: &Dendrogram) -> Result<DistanceMatrix, ClusterError> {
    let n = tree.len();
    if n == 0 {
        return Err(ClusterError::Empty);
    }
    // Build bottom-up: track leaves under each node, fill pair heights when
    // two groups join. O(n²) total work across all merges.
    let mut heights = vec![0.0f64; n * n.saturating_sub(1) / 2];
    let idx = |i: usize, j: usize| -> usize {
        let (a, b) = if i < j { (i, j) } else { (j, i) };
        a * n - a * (a + 1) / 2 + (b - a - 1)
    };
    let mut members: Vec<Vec<usize>> = (0..n).map(|l| vec![l]).collect();
    for m in tree.merges() {
        let left = std::mem::take(&mut members[m.left]);
        let right = std::mem::take(&mut members[m.right]);
        for &i in &left {
            for &j in &right {
                heights[idx(i, j)] = m.height;
            }
        }
        let mut all = left;
        all.extend(right);
        members.push(all);
    }
    DistanceMatrix::from_condensed(n, heights).map_err(ClusterError::from)
}

/// Cophenetic correlation coefficient: Pearson correlation between the
/// original distances and the cophenetic distances. Values near 1 indicate
/// the dendrogram faithfully represents the pairwise structure.
///
/// # Errors
///
/// * [`ClusterError::LabelMismatch`] if tree and distance matrix disagree on
///   the number of observations.
/// * [`ClusterError::Empty`] for fewer than 2 observations.
pub fn cophenetic_correlation(
    tree: &Dendrogram,
    distances: &DistanceMatrix,
) -> Result<f64, ClusterError> {
    if tree.len() != distances.len() {
        return Err(ClusterError::LabelMismatch {
            observations: distances.len(),
            labels: tree.len(),
        });
    }
    if tree.len() < 2 {
        return Err(ClusterError::Empty);
    }
    let coph = cophenetic_matrix(tree)?;
    let a = distances.condensed();
    let b = coph.condensed();
    if a.len() < 2 {
        // Two observations → a single pair; the dendrogram trivially
        // reproduces that distance exactly.
        return Ok(1.0);
    }
    pearson(a, b).map_err(ClusterError::from)
}

fn pearson(a: &[f64], b: &[f64]) -> Result<f64, StatsError> {
    if a.len() < 2 {
        return Err(StatsError::Empty);
    }
    let n = a.len() as f64;
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va == 0.0 || vb == 0.0 {
        return Ok(0.0);
    }
    Ok(cov / (va.sqrt() * vb.sqrt()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{cluster, Linkage};
    use horizon_stats::{Matrix, Metric};

    fn well_separated() -> DistanceMatrix {
        let pts = Matrix::from_rows(vec![
            vec![0.0, 0.0],
            vec![0.5, 0.0],
            vec![10.0, 0.0],
            vec![10.5, 0.0],
            vec![0.0, 30.0],
        ])
        .unwrap();
        DistanceMatrix::from_observations(&pts, Metric::Euclidean)
    }

    #[test]
    fn cophenetic_matrix_matches_merge_heights() {
        let d = well_separated();
        let tree = cluster(&d, Linkage::Average).unwrap();
        let coph = cophenetic_matrix(&tree).unwrap();
        for i in 0..5 {
            for j in 0..5 {
                assert!(
                    (coph.get(i, j) - tree.merge_height(i, j)).abs() < 1e-12,
                    "({i},{j})"
                );
            }
        }
    }

    #[test]
    fn cophenetic_is_ultrametric() {
        // max(d(i,k), d(k,j)) >= d(i,j) for all triples.
        let d = well_separated();
        let tree = cluster(&d, Linkage::Average).unwrap();
        let coph = cophenetic_matrix(&tree).unwrap();
        for i in 0..5 {
            for j in 0..5 {
                for k in 0..5 {
                    assert!(coph.get(i, j) <= coph.get(i, k).max(coph.get(k, j)) + 1e-9);
                }
            }
        }
    }

    #[test]
    fn correlation_high_for_well_separated_clusters() {
        let d = well_separated();
        for link in Linkage::all() {
            let tree = cluster(&d, link).unwrap();
            let c = cophenetic_correlation(&tree, &d).unwrap();
            assert!(c > 0.85, "{link}: {c}");
        }
    }

    #[test]
    fn correlation_rejects_mismatch() {
        let d = well_separated();
        let small = Matrix::from_rows(vec![vec![0.0], vec![1.0]]).unwrap();
        let dsmall = DistanceMatrix::from_observations(&small, Metric::Euclidean);
        let tree = cluster(&dsmall, Linkage::Average).unwrap();
        assert!(matches!(
            cophenetic_correlation(&tree, &d),
            Err(ClusterError::LabelMismatch { .. })
        ));
    }

    #[test]
    fn single_linkage_cophenetic_never_exceeds_input() {
        // Single-linkage cophenetic distances are the minimax path distances,
        // which never exceed the direct distance.
        let d = well_separated();
        let tree = cluster(&d, Linkage::Single).unwrap();
        let coph = cophenetic_matrix(&tree).unwrap();
        for i in 0..5 {
            for j in 0..5 {
                assert!(coph.get(i, j) <= d.get(i, j) + 1e-9);
            }
        }
    }
}
