//! Representative (exemplar) selection for clusters.
//!
//! After cutting a dendrogram into `k` clusters, the paper picks, per
//! cluster, "the benchmark with the shortest linkage distance" — i.e. the
//! member closest to the rest of its cluster (the medoid). That subset is
//! then used instead of the whole suite.

use horizon_stats::DistanceMatrix;
use serde::{Deserialize, Serialize};

use crate::ClusterError;

/// A chosen exemplar for one cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Representative {
    /// Index of the chosen observation (into the original observation list).
    pub index: usize,
    /// All members of the cluster it represents (sorted).
    pub members: Vec<usize>,
    /// Mean distance from the representative to its fellow members
    /// (0.0 for singleton clusters).
    pub mean_distance: f64,
}

/// Selects the medoid of each cluster: the member minimizing the mean
/// distance to the other members. Singleton clusters represent themselves.
///
/// Ties break toward the lower observation index for determinism.
///
/// # Errors
///
/// Returns [`ClusterError::Empty`] if `clusters` is empty or any cluster is
/// empty, and [`ClusterError::LabelMismatch`] if any member index is out of
/// range for the distance matrix.
///
/// # Example
///
/// ```
/// use horizon_cluster::select_representatives;
/// use horizon_stats::{DistanceMatrix, Matrix, Metric};
///
/// let pts = Matrix::from_rows(vec![vec![0.0], vec![1.0], vec![2.0], vec![50.0]])?;
/// let d = DistanceMatrix::from_observations(&pts, Metric::Euclidean);
/// let reps = select_representatives(&[vec![0, 1, 2], vec![3]], &d)?;
/// assert_eq!(reps[0].index, 1); // the middle point is the medoid
/// assert_eq!(reps[1].index, 3);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn select_representatives(
    clusters: &[Vec<usize>],
    distances: &DistanceMatrix,
) -> Result<Vec<Representative>, ClusterError> {
    if clusters.is_empty() {
        return Err(ClusterError::Empty);
    }
    let n = distances.len();
    let mut reps = Vec::with_capacity(clusters.len());
    for members in clusters {
        if members.is_empty() {
            return Err(ClusterError::Empty);
        }
        if let Some(&bad) = members.iter().find(|&&m| m >= n) {
            return Err(ClusterError::LabelMismatch {
                observations: n,
                labels: bad + 1,
            });
        }
        let mut sorted = members.clone();
        sorted.sort_unstable();

        let (best, best_mean) = sorted
            .iter()
            .map(|&cand| {
                let mean = if sorted.len() == 1 {
                    0.0
                } else {
                    sorted
                        .iter()
                        .filter(|&&o| o != cand)
                        .map(|&o| distances.get(cand, o))
                        .sum::<f64>()
                        / (sorted.len() - 1) as f64
                };
                (cand, mean)
            })
            .min_by(|a, b| {
                a.1.partial_cmp(&b.1)
                    .expect("finite distances")
                    .then(a.0.cmp(&b.0))
            })
            .expect("non-empty cluster");

        reps.push(Representative {
            index: best,
            members: sorted,
            mean_distance: best_mean,
        });
    }
    Ok(reps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use horizon_stats::{Matrix, Metric};

    fn line() -> DistanceMatrix {
        let pts = Matrix::from_rows(vec![
            vec![0.0],
            vec![1.0],
            vec![2.0],
            vec![10.0],
            vec![11.0],
        ])
        .unwrap();
        DistanceMatrix::from_observations(&pts, Metric::Euclidean)
    }

    #[test]
    fn medoid_of_line_is_middle() {
        let reps = select_representatives(&[vec![0, 1, 2]], &line()).unwrap();
        assert_eq!(reps[0].index, 1);
        assert_eq!(reps[0].members, vec![0, 1, 2]);
        assert_eq!(reps[0].mean_distance, 1.0);
    }

    #[test]
    fn singleton_represents_itself() {
        let reps = select_representatives(&[vec![3]], &line()).unwrap();
        assert_eq!(reps[0].index, 3);
        assert_eq!(reps[0].mean_distance, 0.0);
    }

    #[test]
    fn pair_ties_break_to_lower_index() {
        let reps = select_representatives(&[vec![3, 4]], &line()).unwrap();
        assert_eq!(reps[0].index, 3);
    }

    #[test]
    fn multiple_clusters() {
        let reps = select_representatives(&[vec![0, 1, 2], vec![3, 4]], &line()).unwrap();
        assert_eq!(reps.len(), 2);
        assert_eq!(reps[0].index, 1);
        assert_eq!(reps[1].index, 3);
    }

    #[test]
    fn unsorted_members_are_handled() {
        let reps = select_representatives(&[vec![2, 0, 1]], &line()).unwrap();
        assert_eq!(reps[0].index, 1);
        assert_eq!(reps[0].members, vec![0, 1, 2]);
    }

    #[test]
    fn errors_on_empty_and_out_of_range() {
        assert!(matches!(
            select_representatives(&[], &line()),
            Err(ClusterError::Empty)
        ));
        assert!(matches!(
            select_representatives(&[vec![]], &line()),
            Err(ClusterError::Empty)
        ));
        assert!(matches!(
            select_representatives(&[vec![99]], &line()),
            Err(ClusterError::LabelMismatch { .. })
        ));
    }
}
