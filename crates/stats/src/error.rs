use std::fmt;

/// Errors produced by the statistical routines in this crate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum StatsError {
    /// A matrix was constructed from rows of unequal length.
    RaggedRows {
        /// Length of the first row.
        expected: usize,
        /// Index of the offending row.
        row: usize,
        /// Length of the offending row.
        found: usize,
    },
    /// An operation required a non-empty matrix or slice.
    Empty,
    /// Two operands have incompatible dimensions.
    DimensionMismatch {
        /// Human-readable description of the operation.
        op: &'static str,
        /// Left-hand dimensions `(rows, cols)`.
        left: (usize, usize),
        /// Right-hand dimensions `(rows, cols)`.
        right: (usize, usize),
    },
    /// An operation required a square matrix.
    NotSquare {
        /// Actual dimensions.
        rows: usize,
        /// Actual dimensions.
        cols: usize,
    },
    /// The Jacobi eigensolver did not converge within its sweep budget.
    NoConvergence {
        /// Number of sweeps performed.
        sweeps: usize,
        /// Remaining off-diagonal Frobenius norm.
        off_diagonal: f64,
    },
    /// Input contained a NaN or infinite value.
    NonFinite {
        /// Description of where the value was found.
        context: &'static str,
    },
    /// A geometric mean was requested over non-positive values.
    NonPositive {
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::RaggedRows {
                expected,
                row,
                found,
            } => write!(
                f,
                "ragged rows: row {row} has {found} columns, expected {expected}"
            ),
            StatsError::Empty => write!(f, "operation requires non-empty input"),
            StatsError::DimensionMismatch { op, left, right } => write!(
                f,
                "dimension mismatch in {op}: {}x{} vs {}x{}",
                left.0, left.1, right.0, right.1
            ),
            StatsError::NotSquare { rows, cols } => {
                write!(f, "matrix must be square, got {rows}x{cols}")
            }
            StatsError::NoConvergence {
                sweeps,
                off_diagonal,
            } => write!(
                f,
                "jacobi eigensolver failed to converge after {sweeps} sweeps \
                 (off-diagonal norm {off_diagonal:e})"
            ),
            StatsError::NonFinite { context } => {
                write!(f, "non-finite value encountered in {context}")
            }
            StatsError::NonPositive { value } => {
                write!(f, "geometric mean requires positive values, got {value}")
            }
        }
    }
}

impl std::error::Error for StatsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = StatsError::RaggedRows {
            expected: 3,
            row: 2,
            found: 4,
        };
        let msg = err.to_string();
        assert!(msg.contains("row 2"));
        assert!(msg.contains("expected 3"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<StatsError>();
    }

    #[test]
    fn convergence_error_mentions_sweeps() {
        let err = StatsError::NoConvergence {
            sweeps: 50,
            off_diagonal: 1e-3,
        };
        assert!(err.to_string().contains("50 sweeps"));
    }
}
