//! Symmetric eigendecomposition via the cyclic Jacobi method.
//!
//! PCA needs the eigenvalues/eigenvectors of a covariance or correlation
//! matrix — always symmetric and small here (at most a few hundred features).
//! The cyclic Jacobi method is simple, unconditionally stable for symmetric
//! input, and converges quadratically, which makes it the right tool in a
//! dependency-free crate.

use serde::{Deserialize, Serialize};

use crate::{Matrix, StatsError};

/// Maximum number of full Jacobi sweeps before giving up.
const MAX_SWEEPS: usize = 100;

/// Result of a symmetric eigendecomposition.
///
/// Eigenpairs are sorted by descending eigenvalue; eigenvectors are unit
/// length and stored as the *columns* of [`EigenDecomposition::vectors`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EigenDecomposition {
    /// Eigenvalues in descending order.
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors; column `j` pairs with `values[j]`.
    pub vectors: Matrix,
}

impl EigenDecomposition {
    /// Number of eigenpairs (the matrix dimension).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True for a 0×0 decomposition (cannot occur via [`jacobi_eigen`]).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Copies eigenvector `j` (paired with `values[j]`) into a vector.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.len()`.
    pub fn vector(&self, j: usize) -> Vec<f64> {
        self.vectors.col(j)
    }
}

/// Computes all eigenvalues and eigenvectors of a symmetric matrix.
///
/// The input is symmetrized as `(A + Aᵀ)/2` to absorb floating-point
/// asymmetry from upstream accumulation.
///
/// # Errors
///
/// * [`StatsError::NotSquare`] if `a` is not square.
/// * [`StatsError::NonFinite`] if `a` contains NaN/inf.
/// * [`StatsError::NoConvergence`] if the off-diagonal norm does not vanish
///   within the sweep budget (does not happen for well-formed input).
///
/// # Example
///
/// ```
/// use horizon_stats::{jacobi_eigen, Matrix};
///
/// let a = Matrix::from_rows(vec![vec![2.0, 1.0], vec![1.0, 2.0]])?;
/// let eig = jacobi_eigen(&a)?;
/// assert!((eig.values[0] - 3.0).abs() < 1e-10);
/// assert!((eig.values[1] - 1.0).abs() < 1e-10);
/// # Ok::<(), horizon_stats::StatsError>(())
/// ```
pub fn jacobi_eigen(a: &Matrix) -> Result<EigenDecomposition, StatsError> {
    let n = a.rows();
    if a.cols() != n {
        return Err(StatsError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    if !a.is_finite() {
        return Err(StatsError::NonFinite {
            context: "jacobi_eigen input",
        });
    }

    // Work on a symmetrized copy.
    let mut m = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            m[(i, j)] = 0.5 * (a[(i, j)] + a[(j, i)]);
        }
    }
    let mut v = Matrix::identity(n);

    let scale: f64 = (0..n)
        .map(|i| (0..n).map(|j| m[(i, j)].abs()).sum::<f64>())
        .fold(0.0f64, f64::max)
        .max(1.0);
    let tol = 1e-14 * scale;

    for _sweep in 0..MAX_SWEEPS {
        let off = off_diagonal_norm(&m);
        if off <= tol {
            return Ok(finish(m, v));
        }
        for p in 0..n - 1 {
            for q in p + 1..n {
                let apq = m[(p, q)];
                if apq.abs() <= tol * 1e-2 / (n as f64) {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                // Classic Jacobi rotation parameters (Golub & Van Loan §8.5).
                let theta = (aqq - app) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;

                // Apply rotation: rows/cols p and q of m.
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                // Accumulate eigenvectors.
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }

    let off = off_diagonal_norm(&m);
    if off <= tol * 10.0 {
        // Converged to within a small multiple of the target; accept.
        return Ok(finish(m, v));
    }
    Err(StatsError::NoConvergence {
        sweeps: MAX_SWEEPS,
        off_diagonal: off,
    })
}

fn off_diagonal_norm(m: &Matrix) -> f64 {
    let n = m.rows();
    let mut acc = 0.0;
    for i in 0..n {
        for j in 0..n {
            if i != j {
                acc += m[(i, j)] * m[(i, j)];
            }
        }
    }
    acc.sqrt()
}

/// Extracts sorted eigenpairs from the diagonalized matrix.
fn finish(m: Matrix, v: Matrix) -> EigenDecomposition {
    let n = m.rows();
    let mut order: Vec<usize> = (0..n).collect();
    let diag: Vec<f64> = (0..n).map(|i| m[(i, i)]).collect();
    order.sort_by(|&a, &b| diag[b].partial_cmp(&diag[a]).expect("finite eigenvalues"));

    let values: Vec<f64> = order.iter().map(|&i| diag[i]).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (new_j, &old_j) in order.iter().enumerate() {
        // Fix sign: make the largest-magnitude component positive so the
        // decomposition is deterministic across runs.
        let col = v.col(old_j);
        let sign = col
            .iter()
            .cloned()
            .max_by(|a, b| a.abs().partial_cmp(&b.abs()).expect("finite"))
            .map(|x| if x < 0.0 { -1.0 } else { 1.0 })
            .unwrap_or(1.0);
        for k in 0..n {
            vectors[(k, new_j)] = sign * col[k];
        }
    }
    EigenDecomposition { values, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() < tol
    }

    #[test]
    fn diagonal_matrix_eigenvalues_are_diagonal() {
        let a = Matrix::from_rows(vec![
            vec![3.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 2.0],
        ])
        .unwrap();
        let eig = jacobi_eigen(&a).unwrap();
        assert_eq!(eig.values, vec![3.0, 2.0, 1.0]);
    }

    #[test]
    fn known_2x2() {
        let a = Matrix::from_rows(vec![vec![2.0, 1.0], vec![1.0, 2.0]]).unwrap();
        let eig = jacobi_eigen(&a).unwrap();
        assert!(approx(eig.values[0], 3.0, 1e-12));
        assert!(approx(eig.values[1], 1.0, 1e-12));
        // Eigenvector for λ=3 is (1,1)/√2.
        let v0 = eig.vector(0);
        assert!(approx(v0[0].abs(), std::f64::consts::FRAC_1_SQRT_2, 1e-10));
        assert!(approx(v0[0], v0[1], 1e-10));
    }

    #[test]
    fn reconstruction_holds() {
        // A = V Λ Vᵀ
        let a = Matrix::from_rows(vec![
            vec![4.0, 1.0, 0.5],
            vec![1.0, 3.0, 0.2],
            vec![0.5, 0.2, 1.0],
        ])
        .unwrap();
        let eig = jacobi_eigen(&a).unwrap();
        let n = 3;
        let mut lam = Matrix::zeros(n, n);
        for i in 0..n {
            lam[(i, i)] = eig.values[i];
        }
        let recon = eig
            .vectors
            .matmul(&lam)
            .unwrap()
            .matmul(&eig.vectors.transpose())
            .unwrap();
        for i in 0..n {
            for j in 0..n {
                assert!(approx(recon[(i, j)], a[(i, j)], 1e-9), "({i},{j})");
            }
        }
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a = Matrix::from_rows(vec![
            vec![2.0, -1.0, 0.0],
            vec![-1.0, 2.0, -1.0],
            vec![0.0, -1.0, 2.0],
        ])
        .unwrap();
        let eig = jacobi_eigen(&a).unwrap();
        let vtv = eig.vectors.transpose().matmul(&eig.vectors).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!(approx(vtv[(i, j)], expect, 1e-10));
            }
        }
    }

    #[test]
    fn trace_equals_eigenvalue_sum() {
        let a = Matrix::from_rows(vec![vec![5.0, 2.0], vec![2.0, -1.0]]).unwrap();
        let eig = jacobi_eigen(&a).unwrap();
        assert!(approx(eig.values.iter().sum::<f64>(), 4.0, 1e-12));
    }

    #[test]
    fn rejects_non_square() {
        let a = Matrix::from_rows(vec![vec![1.0, 2.0]]).unwrap();
        assert!(matches!(
            jacobi_eigen(&a),
            Err(StatsError::NotSquare { .. })
        ));
    }

    #[test]
    fn rejects_nan() {
        let a = Matrix::from_rows(vec![vec![f64::NAN, 0.0], vec![0.0, 1.0]]).unwrap();
        assert!(matches!(
            jacobi_eigen(&a),
            Err(StatsError::NonFinite { .. })
        ));
    }

    #[test]
    fn handles_1x1() {
        let a = Matrix::from_rows(vec![vec![7.0]]).unwrap();
        let eig = jacobi_eigen(&a).unwrap();
        assert_eq!(eig.values, vec![7.0]);
        assert_eq!(eig.vector(0), vec![1.0]);
    }

    #[test]
    fn large_random_symmetric_converges() {
        // Deterministic pseudo-random symmetric matrix, 40x40.
        let n = 40;
        let mut a = Matrix::zeros(n, n);
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        for i in 0..n {
            for j in i..n {
                let v = next();
                a[(i, j)] = v;
                a[(j, i)] = v;
            }
        }
        let eig = jacobi_eigen(&a).unwrap();
        let trace: f64 = (0..n).map(|i| a[(i, i)]).sum();
        assert!(approx(eig.values.iter().sum::<f64>(), trace, 1e-8));
        // Sorted descending.
        for w in eig.values.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }
}
