use std::fmt;
use std::ops::{Index, IndexMut};

use serde::{Deserialize, Serialize};

use crate::StatsError;

/// A dense, row-major, `f64` matrix.
///
/// This is deliberately small: only the operations needed by the PCA and
/// clustering pipeline are provided. Row-major storage keeps per-observation
/// access (one benchmark's feature vector) contiguous.
///
/// # Example
///
/// ```
/// use horizon_stats::Matrix;
///
/// let m = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]])?;
/// assert_eq!(m.rows(), 2);
/// assert_eq!(m[(1, 0)], 3.0);
/// let t = m.transpose();
/// assert_eq!(t[(0, 1)], 3.0);
/// # Ok::<(), horizon_stats::StatsError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a vector of rows.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::Empty`] if `rows` is empty or the first row is
    /// empty, and [`StatsError::RaggedRows`] if rows have differing lengths.
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Result<Self, StatsError> {
        if rows.is_empty() || rows[0].is_empty() {
            return Err(StatsError::Empty);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, row) in rows.iter().enumerate() {
            if row.len() != cols {
                return Err(StatsError::RaggedRows {
                    expected: cols,
                    row: i,
                    found: row.len(),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::DimensionMismatch`] if `data.len() != rows * cols`
    /// and [`StatsError::Empty`] for zero-sized shapes.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, StatsError> {
        if rows == 0 || cols == 0 {
            return Err(StatsError::Empty);
        }
        if data.len() != rows * cols {
            return Err(StatsError::DimensionMismatch {
                op: "from_vec",
                left: (rows, cols),
                right: (data.len(), 1),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrows row `r` as a contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row {r} out of bounds ({} rows)", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row {r} out of bounds ({} rows)", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `c >= self.cols()`.
    pub fn col(&self, c: usize) -> Vec<f64> {
        assert!(c < self.cols, "col {c} out of bounds ({} cols)", self.cols);
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Iterates over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols)
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::DimensionMismatch`] unless
    /// `self.cols() == rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix, StatsError> {
        if self.cols != rhs.rows {
            return Err(StatsError::DimensionMismatch {
                op: "matmul",
                left: (self.rows, self.cols),
                right: (rhs.rows, rhs.cols),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(r, k)];
                if a == 0.0 {
                    continue;
                }
                for c in 0..rhs.cols {
                    out[(r, c)] += a * rhs[(k, c)];
                }
            }
        }
        Ok(out)
    }

    /// Per-column means.
    pub fn column_means(&self) -> Vec<f64> {
        let mut means = vec![0.0; self.cols];
        for row in self.iter_rows() {
            for (m, &v) in means.iter_mut().zip(row) {
                *m += v;
            }
        }
        let n = self.rows as f64;
        for m in &mut means {
            *m /= n;
        }
        means
    }

    /// Per-column sample standard deviations (denominator `n - 1`).
    ///
    /// Columns of a single-row matrix have standard deviation `0`.
    pub fn column_stds(&self) -> Vec<f64> {
        if self.rows < 2 {
            return vec![0.0; self.cols];
        }
        let means = self.column_means();
        let mut acc = vec![0.0; self.cols];
        for row in self.iter_rows() {
            for ((a, &v), &m) in acc.iter_mut().zip(row).zip(&means) {
                let d = v - m;
                *a += d * d;
            }
        }
        let denom = (self.rows - 1) as f64;
        acc.into_iter().map(|a| (a / denom).sqrt()).collect()
    }

    /// True if every element is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Selects a subset of rows (in the given order) into a new matrix.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (i, &r) in indices.iter().enumerate() {
            out.row_mut(i).copy_from_slice(self.row(r));
        }
        out
    }

    /// Selects a subset of columns (in the given order) into a new matrix.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_cols(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(self.rows, indices.len());
        for r in 0..self.rows {
            for (j, &c) in indices.iter().enumerate() {
                out[(r, j)] = self[(r, c)];
            }
        }
        out
    }

    /// Stacks two matrices vertically (`self` on top of `bottom`).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::DimensionMismatch`] unless both have the same
    /// column count.
    pub fn vstack(&self, bottom: &Matrix) -> Result<Matrix, StatsError> {
        if self.cols != bottom.cols {
            return Err(StatsError::DimensionMismatch {
                op: "vstack",
                left: (self.rows, self.cols),
                right: (bottom.rows, bottom.cols),
            });
        }
        let mut data = self.data.clone();
        data.extend_from_slice(&bottom.data);
        Ok(Matrix {
            rows: self.rows + bottom.rows,
            cols: self.cols,
            data,
        })
    }

    /// Borrows the underlying row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for row in self.iter_rows() {
            let cells: Vec<String> = row.iter().map(|v| format!("{v:>10.4}")).collect();
            writeln!(f, "[{}]", cells.join(" "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap()
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let err = Matrix::from_rows(vec![vec![1.0], vec![1.0, 2.0]]).unwrap_err();
        assert!(matches!(err, StatsError::RaggedRows { row: 1, .. }));
    }

    #[test]
    fn from_rows_rejects_empty() {
        assert_eq!(Matrix::from_rows(vec![]).unwrap_err(), StatsError::Empty);
        assert_eq!(
            Matrix::from_rows(vec![vec![]]).unwrap_err(),
            StatsError::Empty
        );
    }

    #[test]
    fn from_vec_checks_len() {
        assert!(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn indexing_round_trips() {
        let mut m = sample();
        assert_eq!(m[(0, 2)], 3.0);
        m[(0, 2)] = 9.0;
        assert_eq!(m[(0, 2)], 9.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn indexing_out_of_bounds_panics() {
        let m = sample();
        let _ = m[(2, 0)];
    }

    #[test]
    fn transpose_involution() {
        let m = sample();
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let m = sample();
        let id = Matrix::identity(3);
        assert_eq!(m.matmul(&id).unwrap(), m);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(vec![vec![5.0, 6.0], vec![7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c[(0, 0)], 19.0);
        assert_eq!(c[(0, 1)], 22.0);
        assert_eq!(c[(1, 0)], 43.0);
        assert_eq!(c[(1, 1)], 50.0);
    }

    #[test]
    fn matmul_rejects_mismatch() {
        let a = sample();
        assert!(matches!(
            a.matmul(&a),
            Err(StatsError::DimensionMismatch { op: "matmul", .. })
        ));
    }

    #[test]
    fn column_means_and_stds() {
        let m = sample();
        assert_eq!(m.column_means(), vec![2.5, 3.5, 4.5]);
        let stds = m.column_stds();
        for s in stds {
            assert!((s - (4.5f64).sqrt()).abs() < 1e-12);
        }
    }

    #[test]
    fn single_row_std_is_zero() {
        let m = Matrix::from_rows(vec![vec![1.0, 2.0]]).unwrap();
        assert_eq!(m.column_stds(), vec![0.0, 0.0]);
    }

    #[test]
    fn select_rows_and_cols() {
        let m = sample();
        let r = m.select_rows(&[1]);
        assert_eq!(r.row(0), &[4.0, 5.0, 6.0]);
        let c = m.select_cols(&[2, 0]);
        assert_eq!(c.row(0), &[3.0, 1.0]);
        assert_eq!(c.row(1), &[6.0, 4.0]);
    }

    #[test]
    fn vstack_concatenates() {
        let m = sample();
        let s = m.vstack(&m).unwrap();
        assert_eq!(s.rows(), 4);
        assert_eq!(s.row(2), m.row(0));
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!sample().to_string().is_empty());
    }
}
