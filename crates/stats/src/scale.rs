//! Column standardization (z-score scaling).
//!
//! PCA on heterogeneous hardware counters (MPKI in units of misses, power in
//! watts, mix in percent) is meaningless without putting every feature on a
//! common scale. The paper standardizes each (metric, machine) column to zero
//! mean and unit variance before extracting principal components.

use serde::{Deserialize, Serialize};

use crate::{Matrix, StatsError};

/// Per-column scaling parameters learned from a training matrix.
///
/// Keeping the scaler separate from the scaled data lets new observations
/// (e.g. an input-set variant, or an aggregated pseudo-benchmark) be projected
/// into the same standardized space later.
///
/// # Example
///
/// ```
/// use horizon_stats::{ColumnScaler, Matrix};
///
/// let x = Matrix::from_rows(vec![vec![1.0, 10.0], vec![3.0, 30.0]])?;
/// let scaler = ColumnScaler::fit(&x)?;
/// let z = scaler.transform(&x)?;
/// assert!((z[(0, 0)] + z[(1, 0)]).abs() < 1e-12); // zero mean
/// # Ok::<(), horizon_stats::StatsError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnScaler {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl ColumnScaler {
    /// Learns per-column mean and sample standard deviation from `x`.
    ///
    /// Constant columns (std = 0) are recorded with std 1 so that
    /// transformation maps them to 0 rather than NaN; this mirrors standard
    /// practice when a counter is identical on every benchmark.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::NonFinite`] if `x` contains NaN/inf.
    pub fn fit(x: &Matrix) -> Result<Self, StatsError> {
        if !x.is_finite() {
            return Err(StatsError::NonFinite {
                context: "ColumnScaler::fit input",
            });
        }
        let means = x.column_means();
        let stds = x
            .column_stds()
            .into_iter()
            .map(|s| if s > 0.0 { s } else { 1.0 })
            .collect();
        Ok(ColumnScaler { means, stds })
    }

    /// Learns per-column means only: transformation centers the data
    /// without rescaling (the covariance-PCA setting).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::NonFinite`] if `x` contains NaN/inf.
    pub fn fit_center_only(x: &Matrix) -> Result<Self, StatsError> {
        if !x.is_finite() {
            return Err(StatsError::NonFinite {
                context: "ColumnScaler::fit_center_only input",
            });
        }
        Ok(ColumnScaler {
            means: x.column_means(),
            stds: vec![1.0; x.cols()],
        })
    }

    /// Number of columns this scaler was fitted on.
    pub fn width(&self) -> usize {
        self.means.len()
    }

    /// Applies the learned scaling: `z = (x - mean) / std` per column.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::DimensionMismatch`] if `x` has a different
    /// column count than the training data.
    pub fn transform(&self, x: &Matrix) -> Result<Matrix, StatsError> {
        if x.cols() != self.width() {
            return Err(StatsError::DimensionMismatch {
                op: "ColumnScaler::transform",
                left: (x.rows(), x.cols()),
                right: (1, self.width()),
            });
        }
        let mut out = x.clone();
        for r in 0..out.rows() {
            let row = out.row_mut(r);
            for (v, (m, s)) in row.iter_mut().zip(self.means.iter().zip(&self.stds)) {
                *v = (*v - m) / s;
            }
        }
        Ok(out)
    }

    /// Applies the scaling to a single observation vector.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::DimensionMismatch`] on width mismatch.
    pub fn transform_row(&self, row: &[f64]) -> Result<Vec<f64>, StatsError> {
        if row.len() != self.width() {
            return Err(StatsError::DimensionMismatch {
                op: "ColumnScaler::transform_row",
                left: (1, row.len()),
                right: (1, self.width()),
            });
        }
        Ok(row
            .iter()
            .zip(self.means.iter().zip(&self.stds))
            .map(|(v, (m, s))| (v - m) / s)
            .collect())
    }

    /// Column means learned at fit time.
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// Column standard deviations learned at fit time (constant columns → 1).
    pub fn stds(&self) -> &[f64] {
        &self.stds
    }
}

/// Convenience wrapper: fit a [`ColumnScaler`] on `x` and transform `x`.
///
/// # Errors
///
/// Propagates errors from [`ColumnScaler::fit`].
pub fn standardize(x: &Matrix) -> Result<Matrix, StatsError> {
    ColumnScaler::fit(x)?.transform(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(vec![
            vec![1.0, 100.0, 5.0],
            vec![2.0, 200.0, 5.0],
            vec![3.0, 300.0, 5.0],
        ])
        .unwrap()
    }

    #[test]
    fn standardized_columns_have_zero_mean_unit_std() {
        let z = standardize(&sample()).unwrap();
        let means = z.column_means();
        assert!(means[0].abs() < 1e-12 && means[1].abs() < 1e-12);
        let stds = z.column_stds();
        assert!((stds[0] - 1.0).abs() < 1e-12);
        assert!((stds[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_column_maps_to_zero() {
        let z = standardize(&sample()).unwrap();
        for r in 0..3 {
            assert_eq!(z[(r, 2)], 0.0);
        }
    }

    #[test]
    fn transform_row_matches_matrix_transform() {
        let x = sample();
        let scaler = ColumnScaler::fit(&x).unwrap();
        let z = scaler.transform(&x).unwrap();
        let zr = scaler.transform_row(x.row(1)).unwrap();
        assert_eq!(zr.as_slice(), z.row(1));
    }

    #[test]
    fn center_only_keeps_scale() {
        let x = sample();
        let scaler = ColumnScaler::fit_center_only(&x).unwrap();
        let z = scaler.transform(&x).unwrap();
        // Zero mean but original spread.
        assert!(z.column_means()[1].abs() < 1e-12);
        assert!((z.column_stds()[1] - x.column_stds()[1]).abs() < 1e-12);
    }

    #[test]
    fn rejects_nan() {
        let x = Matrix::from_rows(vec![vec![f64::NAN]]).unwrap();
        assert!(matches!(
            ColumnScaler::fit(&x),
            Err(StatsError::NonFinite { .. })
        ));
    }

    #[test]
    fn rejects_width_mismatch() {
        let scaler = ColumnScaler::fit(&sample()).unwrap();
        assert!(scaler.transform_row(&[1.0]).is_err());
        let narrow = Matrix::from_rows(vec![vec![1.0]]).unwrap();
        assert!(scaler.transform(&narrow).is_err());
    }
}
