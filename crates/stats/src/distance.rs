//! Distance metrics and pairwise distance matrices.
//!
//! Benchmark similarity in the paper is "measured using the Euclidean
//! distance of program characteristics" in PC space (§III). A condensed
//! symmetric [`DistanceMatrix`] feeds the hierarchical clusterer.

use serde::{Deserialize, Serialize};

use crate::{Matrix, StatsError};

/// Supported distance metrics between observation vectors.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Metric {
    /// Straight-line distance (the paper's choice).
    #[default]
    Euclidean,
    /// Sum of absolute coordinate differences.
    Manhattan,
    /// Maximum absolute coordinate difference.
    Chebyshev,
}

impl Metric {
    /// Distance between two equal-length vectors.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn distance(self, a: &[f64], b: &[f64]) -> f64 {
        assert_eq!(a.len(), b.len(), "vectors must have equal length");
        match self {
            Metric::Euclidean => euclidean(a, b),
            Metric::Manhattan => manhattan(a, b),
            Metric::Chebyshev => a
                .iter()
                .zip(b)
                .map(|(x, y)| (x - y).abs())
                .fold(0.0, f64::max),
        }
    }
}

/// Euclidean distance between two equal-length vectors.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "vectors must have equal length");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// Manhattan (L1) distance between two equal-length vectors.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn manhattan(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "vectors must have equal length");
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

/// A symmetric pairwise distance matrix stored in condensed
/// (upper-triangle) form.
///
/// # Example
///
/// ```
/// use horizon_stats::{DistanceMatrix, Matrix, Metric};
///
/// let pts = Matrix::from_rows(vec![vec![0.0, 0.0], vec![3.0, 4.0], vec![0.0, 1.0]])?;
/// let d = DistanceMatrix::from_observations(&pts, Metric::Euclidean);
/// assert_eq!(d.get(0, 1), 5.0);
/// assert_eq!(d.get(1, 0), 5.0);
/// assert_eq!(d.get(2, 2), 0.0);
/// # Ok::<(), horizon_stats::StatsError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DistanceMatrix {
    n: usize,
    /// Upper triangle, row-major: d(0,1), d(0,2), …, d(0,n-1), d(1,2), …
    condensed: Vec<f64>,
}

impl DistanceMatrix {
    /// Builds the pairwise distance matrix of the rows of `obs`.
    pub fn from_observations(obs: &Matrix, metric: Metric) -> Self {
        let n = obs.rows();
        let mut condensed = Vec::with_capacity(n * (n.saturating_sub(1)) / 2);
        for i in 0..n {
            for j in i + 1..n {
                condensed.push(metric.distance(obs.row(i), obs.row(j)));
            }
        }
        DistanceMatrix { n, condensed }
    }

    /// Builds a distance matrix from an explicit condensed upper triangle.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::DimensionMismatch`] if the buffer length is not
    /// `n·(n−1)/2`, and [`StatsError::NonFinite`] if any entry is NaN/inf or
    /// negative.
    pub fn from_condensed(n: usize, condensed: Vec<f64>) -> Result<Self, StatsError> {
        let expect = n * n.saturating_sub(1) / 2;
        if condensed.len() != expect {
            return Err(StatsError::DimensionMismatch {
                op: "DistanceMatrix::from_condensed",
                left: (n, expect),
                right: (condensed.len(), 1),
            });
        }
        if condensed.iter().any(|v| !v.is_finite() || *v < 0.0) {
            return Err(StatsError::NonFinite {
                context: "DistanceMatrix::from_condensed entries",
            });
        }
        Ok(DistanceMatrix { n, condensed })
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the matrix covers zero observations.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Distance between observations `i` and `j` (symmetric; 0 on the
    /// diagonal).
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of bounds.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n, "index out of bounds");
        if i == j {
            return 0.0;
        }
        let (a, b) = if i < j { (i, j) } else { (j, i) };
        // Offset of row `a` in the condensed triangle.
        let offset = a * self.n - a * (a + 1) / 2;
        self.condensed[offset + (b - a - 1)]
    }

    /// The pair of observations with the smallest distance.
    ///
    /// Returns `None` when there are fewer than two observations.
    pub fn closest_pair(&self) -> Option<(usize, usize, f64)> {
        let mut best: Option<(usize, usize, f64)> = None;
        for i in 0..self.n {
            for j in i + 1..self.n {
                let d = self.get(i, j);
                if best.is_none_or(|(_, _, bd)| d < bd) {
                    best = Some((i, j, d));
                }
            }
        }
        best
    }

    /// Mean distance from observation `i` to every other observation.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds or there is only one observation.
    pub fn mean_distance_from(&self, i: usize) -> f64 {
        assert!(self.n > 1, "need at least two observations");
        let sum: f64 = (0..self.n)
            .filter(|&j| j != i)
            .map(|j| self.get(i, j))
            .sum();
        sum / (self.n - 1) as f64
    }

    /// Index of the observation nearest to `i` (excluding `i` itself).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds or there is only one observation.
    pub fn nearest_neighbor(&self, i: usize) -> (usize, f64) {
        assert!(self.n > 1, "need at least two observations");
        (0..self.n)
            .filter(|&j| j != i)
            .map(|j| (j, self.get(i, j)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite distances"))
            .expect("nonempty")
    }

    /// Borrows the condensed upper triangle.
    pub fn condensed(&self) -> &[f64] {
        &self.condensed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts() -> Matrix {
        Matrix::from_rows(vec![
            vec![0.0, 0.0],
            vec![3.0, 4.0],
            vec![6.0, 8.0],
            vec![0.0, 1.0],
        ])
        .unwrap()
    }

    #[test]
    fn euclidean_known_values() {
        assert_eq!(euclidean(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        assert_eq!(euclidean(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn manhattan_known_values() {
        assert_eq!(manhattan(&[0.0, 0.0], &[3.0, 4.0]), 7.0);
    }

    #[test]
    fn chebyshev_known_values() {
        assert_eq!(Metric::Chebyshev.distance(&[0.0, 0.0], &[3.0, 4.0]), 4.0);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_lengths_panic() {
        euclidean(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn matrix_symmetry_and_diagonal() {
        let d = DistanceMatrix::from_observations(&pts(), Metric::Euclidean);
        for i in 0..4 {
            assert_eq!(d.get(i, i), 0.0);
            for j in 0..4 {
                assert_eq!(d.get(i, j), d.get(j, i));
            }
        }
        assert_eq!(d.get(0, 2), 10.0);
    }

    #[test]
    fn triangle_inequality_holds() {
        let d = DistanceMatrix::from_observations(&pts(), Metric::Euclidean);
        for i in 0..4 {
            for j in 0..4 {
                for k in 0..4 {
                    assert!(d.get(i, j) <= d.get(i, k) + d.get(k, j) + 1e-12);
                }
            }
        }
    }

    #[test]
    fn closest_pair_finds_minimum() {
        let d = DistanceMatrix::from_observations(&pts(), Metric::Euclidean);
        let (i, j, dist) = d.closest_pair().unwrap();
        assert_eq!((i, j), (0, 3));
        assert_eq!(dist, 1.0);
    }

    #[test]
    fn closest_pair_none_for_singleton() {
        let single = Matrix::from_rows(vec![vec![1.0]]).unwrap();
        let d = DistanceMatrix::from_observations(&single, Metric::Euclidean);
        assert!(d.closest_pair().is_none());
    }

    #[test]
    fn nearest_neighbor_and_mean_distance() {
        let d = DistanceMatrix::from_observations(&pts(), Metric::Euclidean);
        assert_eq!(d.nearest_neighbor(0), (3, 1.0));
        let m = d.mean_distance_from(0);
        assert!((m - (5.0 + 10.0 + 1.0) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn condensed_round_trip() {
        let d = DistanceMatrix::from_observations(&pts(), Metric::Euclidean);
        let d2 = DistanceMatrix::from_condensed(4, d.condensed().to_vec()).unwrap();
        assert_eq!(d, d2);
    }

    #[test]
    fn condensed_rejects_bad_len_and_values() {
        assert!(DistanceMatrix::from_condensed(3, vec![1.0]).is_err());
        assert!(DistanceMatrix::from_condensed(2, vec![-1.0]).is_err());
        assert!(DistanceMatrix::from_condensed(2, vec![f64::NAN]).is_err());
    }
}
