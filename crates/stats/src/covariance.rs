//! Covariance and correlation matrices of observation tables.

use crate::{Matrix, StatsError};

/// Sample covariance matrix (denominator `n - 1`) of the columns of `x`.
///
/// Rows of `x` are observations (benchmarks); columns are features
/// (counter-machine pairs).
///
/// # Errors
///
/// * [`StatsError::Empty`] if `x` has fewer than 2 rows (covariance needs at
///   least two observations).
/// * [`StatsError::NonFinite`] if `x` contains NaN/inf.
///
/// # Example
///
/// ```
/// use horizon_stats::Matrix;
/// use horizon_stats::covariance_matrix;
///
/// let x = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 6.0]])?;
/// let c = covariance_matrix(&x)?;
/// assert!((c[(0, 1)] - 2.0 * c[(0, 0)]).abs() < 1e-12); // perfectly correlated
/// # Ok::<(), horizon_stats::StatsError>(())
/// ```
pub fn covariance_matrix(x: &Matrix) -> Result<Matrix, StatsError> {
    if x.rows() < 2 {
        return Err(StatsError::Empty);
    }
    if !x.is_finite() {
        return Err(StatsError::NonFinite {
            context: "covariance_matrix input",
        });
    }
    let n = x.rows();
    let p = x.cols();
    let means = x.column_means();
    let mut cov = Matrix::zeros(p, p);
    for row in x.iter_rows() {
        for i in 0..p {
            let di = row[i] - means[i];
            if di == 0.0 {
                continue;
            }
            for j in i..p {
                cov[(i, j)] += di * (row[j] - means[j]);
            }
        }
    }
    let denom = (n - 1) as f64;
    for i in 0..p {
        for j in i..p {
            let v = cov[(i, j)] / denom;
            cov[(i, j)] = v;
            cov[(j, i)] = v;
        }
    }
    Ok(cov)
}

/// Pearson correlation matrix of the columns of `x`.
///
/// Constant columns (zero variance) get correlation 0 with everything and 1
/// with themselves, matching the convention used by [`crate::ColumnScaler`]
/// for degenerate counters.
///
/// # Errors
///
/// Propagates errors from [`covariance_matrix`].
pub fn correlation_matrix(x: &Matrix) -> Result<Matrix, StatsError> {
    let cov = covariance_matrix(x)?;
    let p = cov.rows();
    let stds: Vec<f64> = (0..p).map(|i| cov[(i, i)].sqrt()).collect();
    let mut corr = Matrix::zeros(p, p);
    for i in 0..p {
        for j in 0..p {
            corr[(i, j)] = if i == j {
                1.0
            } else if stds[i] > 0.0 && stds[j] > 0.0 {
                cov[(i, j)] / (stds[i] * stds[j])
            } else {
                0.0
            };
        }
    }
    Ok(corr)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covariance_of_independent_columns_is_diagonal_dominant() {
        let x = Matrix::from_rows(vec![
            vec![1.0, 0.0],
            vec![-1.0, 0.0],
            vec![0.0, 1.0],
            vec![0.0, -1.0],
        ])
        .unwrap();
        let c = covariance_matrix(&x).unwrap();
        assert!((c[(0, 1)]).abs() < 1e-12);
        assert!(c[(0, 0)] > 0.0 && c[(1, 1)] > 0.0);
    }

    #[test]
    fn covariance_matches_hand_computation() {
        let x = Matrix::from_rows(vec![vec![1.0, 2.0], vec![2.0, 4.0], vec![3.0, 6.0]]).unwrap();
        let c = covariance_matrix(&x).unwrap();
        assert!((c[(0, 0)] - 1.0).abs() < 1e-12);
        assert!((c[(1, 1)] - 4.0).abs() < 1e-12);
        assert!((c[(0, 1)] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn correlation_bounds_and_diagonal() {
        let x = Matrix::from_rows(vec![
            vec![1.0, 5.0, 2.0],
            vec![2.0, 3.0, 2.5],
            vec![3.0, 4.0, 1.0],
            vec![4.0, 1.0, 0.0],
        ])
        .unwrap();
        let r = correlation_matrix(&x).unwrap();
        for i in 0..3 {
            assert_eq!(r[(i, i)], 1.0);
            for j in 0..3 {
                assert!(r[(i, j)] <= 1.0 + 1e-12 && r[(i, j)] >= -1.0 - 1e-12);
                assert_eq!(r[(i, j)], r[(j, i)]);
            }
        }
    }

    #[test]
    fn perfectly_correlated_columns() {
        let x = Matrix::from_rows(vec![vec![1.0, 10.0], vec![2.0, 20.0], vec![3.0, 30.0]]).unwrap();
        let r = correlation_matrix(&x).unwrap();
        assert!((r[(0, 1)] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_column_has_zero_correlation() {
        let x = Matrix::from_rows(vec![vec![1.0, 7.0], vec![2.0, 7.0], vec![3.0, 7.0]]).unwrap();
        let r = correlation_matrix(&x).unwrap();
        assert_eq!(r[(0, 1)], 0.0);
        assert_eq!(r[(1, 1)], 1.0);
    }

    #[test]
    fn needs_two_observations() {
        let x = Matrix::from_rows(vec![vec![1.0, 2.0]]).unwrap();
        assert!(matches!(covariance_matrix(&x), Err(StatsError::Empty)));
    }
}
