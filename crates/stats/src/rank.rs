//! Rankings, Spearman correlation, and rank spread.
//!
//! Table IX of the paper classifies benchmark *sensitivity*: a benchmark is
//! sensitive to (say) L1D geometry if its rank by L1D MPKI moves a lot from
//! machine to machine. [`rank_spread`] quantifies exactly that.

use crate::StatsError;

/// Fractional ranks (1-based) with ties receiving their average rank.
///
/// Returns an empty vector for empty input.
///
/// # Panics
///
/// Panics if any value is NaN (ranks would be ill-defined).
///
/// # Example
///
/// ```
/// use horizon_stats::ranks;
///
/// assert_eq!(ranks(&[10.0, 30.0, 20.0]), vec![1.0, 3.0, 2.0]);
/// assert_eq!(ranks(&[1.0, 2.0, 2.0]), vec![1.0, 2.5, 2.5]);
/// ```
pub fn ranks(values: &[f64]) -> Vec<f64> {
    assert!(
        values.iter().all(|v| !v.is_nan()),
        "ranks are undefined for NaN input"
    );
    let n = values.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| values[a].partial_cmp(&values[b]).expect("no NaN"));

    let mut out = vec![0.0; n];
    let mut i = 0;
    while i < n {
        // Find the run of tied values.
        let mut j = i;
        while j + 1 < n && values[order[j + 1]] == values[order[i]] {
            j += 1;
        }
        // Average rank of positions i..=j (1-based).
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            out[idx] = avg;
        }
        i = j + 1;
    }
    out
}

/// Spearman rank correlation coefficient between two equal-length samples.
///
/// # Errors
///
/// * [`StatsError::DimensionMismatch`] if lengths differ.
/// * [`StatsError::Empty`] for fewer than two observations.
///
/// Returns 0 when either sample is constant (rank variance is zero).
pub fn spearman(a: &[f64], b: &[f64]) -> Result<f64, StatsError> {
    if a.len() != b.len() {
        return Err(StatsError::DimensionMismatch {
            op: "spearman",
            left: (a.len(), 1),
            right: (b.len(), 1),
        });
    }
    if a.len() < 2 {
        return Err(StatsError::Empty);
    }
    let ra = ranks(a);
    let rb = ranks(b);
    pearson(&ra, &rb)
}

/// Pearson correlation used internally on rank vectors.
fn pearson(a: &[f64], b: &[f64]) -> Result<f64, StatsError> {
    let n = a.len() as f64;
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va == 0.0 || vb == 0.0 {
        return Ok(0.0);
    }
    Ok(cov / (va.sqrt() * vb.sqrt()))
}

/// Spread of an item's rank across several rankings.
///
/// `rankings` holds one rank vector per machine (each of length `items`);
/// the result holds, per item, `max rank − min rank` across machines —
/// the paper's indicator of sensitivity to a machine characteristic.
///
/// # Errors
///
/// * [`StatsError::Empty`] if `rankings` is empty.
/// * [`StatsError::DimensionMismatch`] if rank vectors differ in length.
///
/// # Example
///
/// ```
/// use horizon_stats::rank_spread;
///
/// // Item 0 is rank 1 everywhere (insensitive); item 1 swings from 2 to 3.
/// let spread = rank_spread(&[vec![1.0, 2.0, 3.0], vec![1.0, 3.0, 2.0]])?;
/// assert_eq!(spread, vec![0.0, 1.0, 1.0]);
/// # Ok::<(), horizon_stats::StatsError>(())
/// ```
pub fn rank_spread(rankings: &[Vec<f64>]) -> Result<Vec<f64>, StatsError> {
    let first = rankings.first().ok_or(StatsError::Empty)?;
    let items = first.len();
    for r in rankings {
        if r.len() != items {
            return Err(StatsError::DimensionMismatch {
                op: "rank_spread",
                left: (items, 1),
                right: (r.len(), 1),
            });
        }
    }
    let mut out = Vec::with_capacity(items);
    for i in 0..items {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for r in rankings {
            min = min.min(r[i]);
            max = max.max(r[i]);
        }
        out.push(max - min);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_simple() {
        assert_eq!(ranks(&[3.0, 1.0, 2.0]), vec![3.0, 1.0, 2.0]);
    }

    #[test]
    fn ranks_with_ties() {
        assert_eq!(ranks(&[5.0, 5.0, 1.0]), vec![2.5, 2.5, 1.0]);
        assert_eq!(ranks(&[2.0, 2.0, 2.0]), vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn ranks_empty() {
        assert!(ranks(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn ranks_reject_nan() {
        ranks(&[1.0, f64::NAN]);
    }

    #[test]
    fn spearman_perfect_monotone() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [10.0, 100.0, 1000.0, 10000.0];
        assert!((spearman(&a, &b).unwrap() - 1.0).abs() < 1e-12);
        let c = [4.0, 3.0, 2.0, 1.0];
        assert!((spearman(&a, &c).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_constant_is_zero() {
        assert_eq!(spearman(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]).unwrap(), 0.0);
    }

    #[test]
    fn spearman_rejects_mismatch() {
        assert!(spearman(&[1.0], &[1.0, 2.0]).is_err());
        assert!(spearman(&[1.0], &[1.0]).is_err());
    }

    #[test]
    fn rank_spread_identifies_stable_items() {
        let machines = vec![
            ranks(&[0.1, 5.0, 2.0]),
            ranks(&[0.2, 4.0, 9.0]),
            ranks(&[0.1, 6.0, 1.0]),
        ];
        let spread = rank_spread(&machines).unwrap();
        // Item 0 is always the smallest → rank 1 everywhere → spread 0.
        assert_eq!(spread[0], 0.0);
        // Item 2 swings between rank 2 and rank 3 → spread 1.
        assert_eq!(spread[2], 1.0);
        // Item 1 swings between rank 2 and rank 3 → spread 1.
        assert_eq!(spread[1], 1.0);
    }

    #[test]
    fn rank_spread_errors() {
        assert!(rank_spread(&[]).is_err());
        assert!(rank_spread(&[vec![1.0], vec![1.0, 2.0]]).is_err());
    }
}
