//! Principal Component Analysis with Kaiser-criterion retention.
//!
//! The paper's methodology (§III): standardize every (counter, machine)
//! feature, compute principal components, and keep only the components with
//! eigenvalue ≥ 1 (the Kaiser criterion). Benchmarks are then compared by
//! Euclidean distance between their retained PC scores.

use serde::{Deserialize, Serialize};

use crate::covariance::{correlation_matrix, covariance_matrix};
use crate::eigen::jacobi_eigen;
use crate::scale::ColumnScaler;
use crate::{Matrix, StatsError};

/// Which second-moment matrix PCA diagonalizes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum PcaBasis {
    /// Correlation matrix: every feature standardized first (the paper's
    /// setting, mandatory for mixed-unit counters).
    #[default]
    Correlation,
    /// Covariance matrix: raw feature scales retained.
    Covariance,
}

/// How many principal components to retain after fitting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub enum Retention {
    /// Keep components with eigenvalue ≥ 1 (the paper's default).
    #[default]
    Kaiser,
    /// Keep the smallest number of components whose cumulative explained
    /// variance reaches the given fraction (e.g. `0.9`).
    VarianceCoverage(f64),
    /// Keep exactly this many components (clamped to the available count).
    Fixed(usize),
    /// Keep every component.
    All,
}

/// A fitted PCA model.
///
/// PCA is performed on the *correlation* matrix — i.e. features are z-scored
/// first — because the features (MPKI, percentages, watts) live on wildly
/// different scales. See DESIGN.md §5.2 for the ablation against
/// covariance-based PCA.
///
/// # Example
///
/// ```
/// use horizon_stats::{Matrix, Pca, Retention};
///
/// let x = Matrix::from_rows(vec![
///     vec![0.0, 0.1, 10.0],
///     vec![1.0, 1.1, 20.0],
///     vec![2.0, 1.9, 30.0],
///     vec![3.0, 3.2, 40.0],
/// ])?;
/// let pca = Pca::fit(&x, Retention::VarianceCoverage(0.95))?;
/// assert!(pca.explained_variance_ratio()[0] > 0.9); // one dominant axis
/// # Ok::<(), horizon_stats::StatsError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Pca {
    scaler: ColumnScaler,
    /// All eigenvalues, descending.
    eigenvalues: Vec<f64>,
    /// Loadings for retained components: `features × components`.
    loadings: Matrix,
    /// Scores of the training observations: `observations × components`.
    scores: Matrix,
    retained: usize,
}

impl Pca {
    /// Fits a PCA model on the observation matrix `x`
    /// (rows = observations, columns = features).
    ///
    /// # Errors
    ///
    /// * [`StatsError::Empty`] if `x` has fewer than 2 rows.
    /// * [`StatsError::NonFinite`] on NaN/inf input.
    /// * Propagates eigensolver failures.
    pub fn fit(x: &Matrix, retention: Retention) -> Result<Self, StatsError> {
        Self::fit_with(x, retention, PcaBasis::Correlation)
    }

    /// Fits on an explicit basis: correlation (z-scored features, the
    /// default) or covariance (raw scales — DESIGN.md's §5.2 ablation shows
    /// how large-magnitude counters would then dominate the components).
    ///
    /// # Errors
    ///
    /// Same as [`Pca::fit`].
    pub fn fit_with(x: &Matrix, retention: Retention, basis: PcaBasis) -> Result<Self, StatsError> {
        if x.rows() < 2 {
            return Err(StatsError::Empty);
        }
        let scaler = {
            let mut span = horizon_telemetry::span("stats.standardize");
            span.record("rows", x.rows());
            span.record("cols", x.cols());
            match basis {
                PcaBasis::Correlation => ColumnScaler::fit(x)?,
                // Covariance PCA centers but does not rescale.
                PcaBasis::Covariance => ColumnScaler::fit_center_only(x)?,
            }
        };
        let basis_matrix = {
            let _span = horizon_telemetry::span("stats.covariance");
            match basis {
                PcaBasis::Correlation => correlation_matrix(x)?,
                PcaBasis::Covariance => covariance_matrix(x)?,
            }
        };
        let eig = {
            let mut span = horizon_telemetry::span("stats.eigen");
            span.record("dim", basis_matrix.rows());
            jacobi_eigen(&basis_matrix)?
        };

        // Numerical noise can make tiny eigenvalues slightly negative.
        let eigenvalues: Vec<f64> = eig.values.iter().map(|&v| v.max(0.0)).collect();

        let retained = match retention {
            Retention::Kaiser => {
                let k = eigenvalues.iter().filter(|&&v| v >= 1.0).count();
                k.max(1)
            }
            Retention::VarianceCoverage(frac) => {
                let frac = frac.clamp(0.0, 1.0);
                let total: f64 = eigenvalues.iter().sum();
                let mut acc = 0.0;
                let mut k = 0;
                for &v in &eigenvalues {
                    acc += v;
                    k += 1;
                    if total > 0.0 && acc / total >= frac {
                        break;
                    }
                }
                k.max(1)
            }
            Retention::Fixed(k) => k.clamp(1, eigenvalues.len()),
            Retention::All => eigenvalues.len(),
        };

        let keep: Vec<usize> = (0..retained).collect();
        let loadings = eig.vectors.select_cols(&keep);
        let scores = {
            let mut span = horizon_telemetry::span("stats.project");
            span.record("retained", retained);
            let z = scaler.transform(x)?;
            z.matmul(&loadings)?
        };

        Ok(Pca {
            scaler,
            eigenvalues,
            loadings,
            scores,
            retained,
        })
    }

    /// Number of retained components.
    pub fn components(&self) -> usize {
        self.retained
    }

    /// All eigenvalues of the correlation matrix, descending
    /// (including non-retained components).
    pub fn eigenvalues(&self) -> &[f64] {
        &self.eigenvalues
    }

    /// Fraction of total variance explained by each retained component.
    pub fn explained_variance_ratio(&self) -> Vec<f64> {
        let total: f64 = self.eigenvalues.iter().sum();
        self.eigenvalues[..self.retained]
            .iter()
            .map(|&v| if total > 0.0 { v / total } else { 0.0 })
            .collect()
    }

    /// Cumulative variance fraction covered by the retained components.
    pub fn coverage(&self) -> f64 {
        self.explained_variance_ratio().iter().sum()
    }

    /// PC scores of the training observations (`observations × components`).
    pub fn scores(&self) -> &Matrix {
        &self.scores
    }

    /// Loading matrix (`features × components`). Column `j` holds the feature
    /// weights of PC `j+1`.
    pub fn loadings(&self) -> &Matrix {
        &self.loadings
    }

    /// Indices of the `k` features with the largest absolute loading on
    /// component `pc` (0-based), most dominant first.
    ///
    /// This answers questions like "PC2 is dominated by branch MPKI"
    /// (paper §IV-E).
    ///
    /// # Panics
    ///
    /// Panics if `pc >= self.components()`.
    pub fn dominant_features(&self, pc: usize, k: usize) -> Vec<usize> {
        assert!(pc < self.retained, "component {pc} not retained");
        let col = self.loadings.col(pc);
        let mut idx: Vec<usize> = (0..col.len()).collect();
        idx.sort_by(|&a, &b| {
            col[b]
                .abs()
                .partial_cmp(&col[a].abs())
                .expect("finite loadings")
        });
        idx.truncate(k);
        idx
    }

    /// Projects new observations into the retained PC space.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::DimensionMismatch`] if the feature count differs
    /// from the training data.
    pub fn project(&self, x: &Matrix) -> Result<Matrix, StatsError> {
        let z = self.scaler.transform(x)?;
        z.matmul(&self.loadings)
    }

    /// Projects a single observation row into the retained PC space.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::DimensionMismatch`] on width mismatch.
    pub fn project_row(&self, row: &[f64]) -> Result<Vec<f64>, StatsError> {
        let z = self.scaler.transform_row(row)?;
        let mut out = vec![0.0; self.retained];
        for (j, o) in out.iter_mut().enumerate() {
            *o = z
                .iter()
                .enumerate()
                .map(|(f, &zv)| zv * self.loadings[(f, j)])
                .sum();
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Observations with one dominant latent direction plus noise.
    fn correlated_data() -> Matrix {
        let mut rows = Vec::new();
        for i in 0..12 {
            let t = i as f64;
            // Feature 3 is pure noise-free constant slope in another axis.
            rows.push(vec![
                t,
                2.0 * t + 0.01 * ((i * 7 % 5) as f64),
                -t + 0.02 * ((i * 3 % 7) as f64),
                (i % 2) as f64,
            ]);
        }
        Matrix::from_rows(rows).unwrap()
    }

    #[test]
    fn kaiser_retains_dominant_components() {
        let pca = Pca::fit(&correlated_data(), Retention::Kaiser).unwrap();
        // Three perfectly correlated features collapse into one PC; the
        // parity feature forms a second axis.
        assert!(pca.components() <= 3);
        assert!(pca.components() >= 1);
        assert!(pca.coverage() > 0.7);
    }

    #[test]
    fn eigenvalue_sum_equals_feature_count() {
        // PCA on a correlation matrix: trace = p.
        let pca = Pca::fit(&correlated_data(), Retention::All).unwrap();
        let sum: f64 = pca.eigenvalues().iter().sum();
        assert!((sum - 4.0).abs() < 1e-8);
    }

    #[test]
    fn variance_coverage_reaches_requested_fraction() {
        let pca = Pca::fit(&correlated_data(), Retention::VarianceCoverage(0.99)).unwrap();
        assert!(pca.coverage() >= 0.99 - 1e-12);
    }

    #[test]
    fn fixed_retention_clamps() {
        let pca = Pca::fit(&correlated_data(), Retention::Fixed(100)).unwrap();
        assert_eq!(pca.components(), 4);
        let pca1 = Pca::fit(&correlated_data(), Retention::Fixed(0)).unwrap();
        assert_eq!(pca1.components(), 1);
    }

    #[test]
    fn scores_shape_and_projection_consistency() {
        let x = correlated_data();
        let pca = Pca::fit(&x, Retention::Kaiser).unwrap();
        assert_eq!(pca.scores().rows(), x.rows());
        assert_eq!(pca.scores().cols(), pca.components());
        // Projecting the training data reproduces the stored scores.
        let proj = pca.project(&x).unwrap();
        for r in 0..x.rows() {
            for c in 0..pca.components() {
                assert!((proj[(r, c)] - pca.scores()[(r, c)]).abs() < 1e-10);
            }
        }
        // Row projection agrees with matrix projection.
        let pr = pca.project_row(x.row(5)).unwrap();
        for c in 0..pca.components() {
            assert!((pr[c] - proj[(5, c)]).abs() < 1e-10);
        }
    }

    #[test]
    fn scores_are_centered() {
        let pca = Pca::fit(&correlated_data(), Retention::All).unwrap();
        for c in 0..pca.components() {
            let col = pca.scores().col(c);
            let mean: f64 = col.iter().sum::<f64>() / col.len() as f64;
            assert!(mean.abs() < 1e-10);
        }
    }

    #[test]
    fn dominant_features_identifies_loaded_feature() {
        // Feature 3 (parity) is uncorrelated with the slope features, so it
        // must dominate some retained component in an all-components fit.
        let pca = Pca::fit(&correlated_data(), Retention::All).unwrap();
        let found = (0..pca.components()).any(|pc| pca.dominant_features(pc, 1)[0] == 3);
        assert!(found);
    }

    #[test]
    fn covariance_basis_weights_large_scale_features() {
        // Feature 1 has 100x the scale of feature 0: covariance PCA's first
        // component aligns with it; correlation PCA treats them equally.
        let mut rows = Vec::new();
        for i in 0..10 {
            let t = i as f64;
            rows.push(vec![t * 0.01 + ((i % 3) as f64) * 0.001, -t * 100.0]);
        }
        let x = Matrix::from_rows(rows).unwrap();
        let cov = Pca::fit_with(&x, Retention::Fixed(1), PcaBasis::Covariance).unwrap();
        let top = cov.dominant_features(0, 1)[0];
        assert_eq!(top, 1, "covariance PC1 should follow the big feature");
        // First covariance eigenvalue carries essentially all variance.
        assert!(cov.explained_variance_ratio()[0] > 0.999);
    }

    #[test]
    fn rejects_single_observation() {
        let x = Matrix::from_rows(vec![vec![1.0, 2.0]]).unwrap();
        assert!(matches!(
            Pca::fit(&x, Retention::Kaiser),
            Err(StatsError::Empty)
        ));
    }

    #[test]
    fn handles_constant_features() {
        let x = Matrix::from_rows(vec![vec![1.0, 5.0], vec![2.0, 5.0], vec![3.0, 5.0]]).unwrap();
        let pca = Pca::fit(&x, Retention::Kaiser).unwrap();
        assert!(pca.scores().is_finite());
    }

    #[test]
    fn projection_rejects_width_mismatch() {
        let pca = Pca::fit(&correlated_data(), Retention::Kaiser).unwrap();
        assert!(pca.project_row(&[1.0, 2.0]).is_err());
    }
}
