//! Scalar summary statistics: means, geometric means, ranges, percentiles.
//!
//! SPEC scores are geometric means of per-benchmark speedups; Table II of the
//! paper reports min–max ranges of counter metrics. Both live here.

use serde::{Deserialize, Serialize};

use crate::StatsError;

/// Arithmetic mean of a slice.
///
/// # Errors
///
/// Returns [`StatsError::Empty`] for an empty slice.
pub fn mean(values: &[f64]) -> Result<f64, StatsError> {
    if values.is_empty() {
        return Err(StatsError::Empty);
    }
    Ok(values.iter().sum::<f64>() / values.len() as f64)
}

/// Geometric mean of a slice of positive values.
///
/// Computed in log space for numerical robustness: SPEC-style scores multiply
/// dozens of ratios and would overflow/underflow in linear space.
///
/// # Errors
///
/// * [`StatsError::Empty`] for an empty slice.
/// * [`StatsError::NonPositive`] if any value is ≤ 0 (logarithm undefined).
/// * [`StatsError::NonFinite`] if any value is NaN/inf.
pub fn geometric_mean(values: &[f64]) -> Result<f64, StatsError> {
    if values.is_empty() {
        return Err(StatsError::Empty);
    }
    let mut acc = 0.0;
    for &v in values {
        if !v.is_finite() {
            return Err(StatsError::NonFinite {
                context: "geometric_mean input",
            });
        }
        if v <= 0.0 {
            return Err(StatsError::NonPositive { value: v });
        }
        acc += v.ln();
    }
    Ok((acc / values.len() as f64).exp())
}

/// Sample standard deviation (denominator `n − 1`).
///
/// # Errors
///
/// Returns [`StatsError::Empty`] for slices with fewer than two elements.
pub fn sample_std(values: &[f64]) -> Result<f64, StatsError> {
    if values.len() < 2 {
        return Err(StatsError::Empty);
    }
    let m = mean(values)?;
    let ss: f64 = values.iter().map(|v| (v - m) * (v - m)).sum();
    Ok((ss / (values.len() - 1) as f64).sqrt())
}

/// Population standard deviation (denominator `n`).
///
/// # Errors
///
/// Returns [`StatsError::Empty`] for an empty slice.
pub fn population_std(values: &[f64]) -> Result<f64, StatsError> {
    let m = mean(values)?;
    let ss: f64 = values.iter().map(|v| (v - m) * (v - m)).sum();
    Ok((ss / values.len() as f64).sqrt())
}

/// Linear-interpolated percentile, `p` in `[0, 100]`.
///
/// # Errors
///
/// Returns [`StatsError::Empty`] for an empty slice and
/// [`StatsError::NonFinite`] for a `p` outside `[0, 100]` or NaN input.
pub fn percentile(values: &[f64], p: f64) -> Result<f64, StatsError> {
    if values.is_empty() {
        return Err(StatsError::Empty);
    }
    if !(0.0..=100.0).contains(&p) {
        return Err(StatsError::NonFinite {
            context: "percentile fraction",
        });
    }
    if values.iter().any(|v| !v.is_finite()) {
        return Err(StatsError::NonFinite {
            context: "percentile input",
        });
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        Ok(sorted[lo])
    } else {
        let frac = rank - lo as f64;
        Ok(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }
}

/// A `[min, max]` range of a metric, as reported per sub-suite in Table II.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Range {
    /// Smallest observed value.
    pub min: f64,
    /// Largest observed value.
    pub max: f64,
}

impl Range {
    /// Computes the range of a non-empty slice.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::Empty`] for an empty slice and
    /// [`StatsError::NonFinite`] if any element is NaN/inf.
    pub fn of(values: &[f64]) -> Result<Self, StatsError> {
        if values.is_empty() {
            return Err(StatsError::Empty);
        }
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &v in values {
            if !v.is_finite() {
                return Err(StatsError::NonFinite {
                    context: "Range::of input",
                });
            }
            min = min.min(v);
            max = max.max(v);
        }
        Ok(Range { min, max })
    }

    /// Width of the range (`max − min`).
    pub fn span(&self) -> f64 {
        self.max - self.min
    }

    /// True if `v` lies within the closed interval.
    pub fn contains(&self, v: f64) -> bool {
        v >= self.min && v <= self.max
    }
}

impl std::fmt::Display for Range {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.2} - {:.2}", self.min, self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]).unwrap(), 2.0);
        assert!(mean(&[]).is_err());
    }

    #[test]
    fn geometric_mean_basic() {
        let g = geometric_mean(&[1.0, 4.0]).unwrap();
        assert!((g - 2.0).abs() < 1e-12);
        let g = geometric_mean(&[2.0, 2.0, 2.0]).unwrap();
        assert!((g - 2.0).abs() < 1e-12);
    }

    #[test]
    fn geometric_mean_rejects_nonpositive() {
        assert!(matches!(
            geometric_mean(&[1.0, 0.0]),
            Err(StatsError::NonPositive { .. })
        ));
        assert!(matches!(
            geometric_mean(&[1.0, -2.0]),
            Err(StatsError::NonPositive { .. })
        ));
    }

    #[test]
    fn geometric_mean_le_arithmetic_mean() {
        let vals = [1.0, 2.0, 3.0, 4.0, 9.5];
        assert!(geometric_mean(&vals).unwrap() <= mean(&vals).unwrap());
    }

    #[test]
    fn geometric_mean_large_values_no_overflow() {
        let vals = vec![1e200, 1e200, 1e200];
        let g = geometric_mean(&vals).unwrap();
        assert!((g - 1e200).abs() / 1e200 < 1e-10);
    }

    #[test]
    fn stds() {
        let vals = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((population_std(&vals).unwrap() - 2.0).abs() < 1e-12);
        assert!(sample_std(&vals).unwrap() > population_std(&vals).unwrap());
        assert!(sample_std(&[1.0]).is_err());
    }

    #[test]
    fn percentile_interpolates() {
        let vals = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&vals, 0.0).unwrap(), 1.0);
        assert_eq!(percentile(&vals, 100.0).unwrap(), 4.0);
        assert_eq!(percentile(&vals, 50.0).unwrap(), 2.5);
        assert!(percentile(&vals, 101.0).is_err());
    }

    #[test]
    fn percentile_unsorted_input() {
        let vals = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(percentile(&vals, 50.0).unwrap(), 2.5);
    }

    #[test]
    fn range_of_values() {
        let r = Range::of(&[3.0, -1.0, 2.0]).unwrap();
        assert_eq!(r.min, -1.0);
        assert_eq!(r.max, 3.0);
        assert_eq!(r.span(), 4.0);
        assert!(r.contains(0.0));
        assert!(!r.contains(4.0));
        assert!(Range::of(&[]).is_err());
        assert!(Range::of(&[f64::NAN]).is_err());
    }

    #[test]
    fn range_display() {
        let r = Range::of(&[0.0, 56.0]).unwrap();
        assert_eq!(r.to_string(), "0.00 - 56.00");
    }
}
