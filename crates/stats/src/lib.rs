//! Statistical foundations for workload-similarity analysis.
//!
//! The HPCA'18 SPEC CPU2017 characterization study reduces a
//! benchmark × (metric, machine) feature table with principal component
//! analysis and then clusters benchmarks in the reduced space. This crate
//! provides the numerical substrate for that pipeline, implemented from
//! scratch (no BLAS/LAPACK):
//!
//! * [`Matrix`] — a small dense row-major matrix type,
//! * [`standardize`] — per-column z-score scaling,
//! * [`covariance_matrix`] / [`correlation_matrix`],
//! * [`jacobi_eigen`] — a cyclic Jacobi eigensolver for symmetric matrices,
//! * [`Pca`] — PCA with the Kaiser criterion and variance-coverage retention,
//! * [`distance`] — Euclidean & friends, pairwise distance matrices,
//! * [`summary`] — means, geometric means, ranges, percentiles,
//! * [`rank`] — rankings with ties, Spearman correlation, rank spread.
//!
//! # Example
//!
//! ```
//! use horizon_stats::{Matrix, Pca, Retention};
//!
//! // Four observations of three (correlated) features.
//! let x = Matrix::from_rows(vec![
//!     vec![1.0, 2.0, 0.5],
//!     vec![2.0, 4.1, 0.4],
//!     vec![3.0, 5.9, 0.6],
//!     vec![4.0, 8.2, 0.5],
//! ])?;
//! let pca = Pca::fit(&x, Retention::Kaiser)?;
//! assert!(pca.components() >= 1);
//! let scores = pca.scores();
//! assert_eq!(scores.rows(), 4);
//! # Ok::<(), horizon_stats::StatsError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod matrix;

pub mod covariance;
pub mod distance;
pub mod eigen;
pub mod pca;
pub mod rank;
pub mod scale;
pub mod summary;

pub use error::StatsError;
pub use matrix::Matrix;

pub use covariance::{correlation_matrix, covariance_matrix};
pub use distance::{euclidean, manhattan, DistanceMatrix, Metric};
pub use eigen::{jacobi_eigen, EigenDecomposition};
pub use pca::{Pca, PcaBasis, Retention};
pub use rank::{rank_spread, ranks, spearman};
pub use scale::{standardize, ColumnScaler};
pub use summary::{geometric_mean, mean, percentile, population_std, sample_std, Range};
