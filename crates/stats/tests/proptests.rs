//! Property-based tests for the statistical core.

use horizon_stats::{
    correlation_matrix, euclidean, geometric_mean, jacobi_eigen, manhattan, mean, ranks,
    standardize, DistanceMatrix, Matrix, Metric, Pca, Retention,
};
use proptest::prelude::*;

/// Strategy: a well-formed observation matrix with bounded values.
fn obs_matrix(max_rows: usize, max_cols: usize) -> impl Strategy<Value = Matrix> {
    (2..=max_rows, 1..=max_cols).prop_flat_map(|(r, c)| {
        proptest::collection::vec(proptest::collection::vec(-1e3..1e3f64, c..=c), r..=r)
            .prop_map(|rows| Matrix::from_rows(rows).expect("well-formed"))
    })
}

proptest! {
    #[test]
    fn standardize_produces_zero_mean(x in obs_matrix(10, 6)) {
        let z = standardize(&x).unwrap();
        for m in z.column_means() {
            prop_assert!(m.abs() < 1e-8);
        }
    }

    #[test]
    fn transpose_is_involution(x in obs_matrix(8, 8)) {
        prop_assert_eq!(x.transpose().transpose(), x);
    }

    #[test]
    fn correlation_is_symmetric_and_bounded(x in obs_matrix(8, 5)) {
        let r = correlation_matrix(&x).unwrap();
        for i in 0..r.rows() {
            prop_assert!((r[(i, i)] - 1.0).abs() < 1e-12);
            for j in 0..r.cols() {
                prop_assert!((r[(i, j)] - r[(j, i)]).abs() < 1e-12);
                prop_assert!(r[(i, j)] <= 1.0 + 1e-9 && r[(i, j)] >= -1.0 - 1e-9);
            }
        }
    }

    #[test]
    fn eigen_trace_preserved(x in obs_matrix(8, 6)) {
        let r = correlation_matrix(&x).unwrap();
        let eig = jacobi_eigen(&r).unwrap();
        let trace: f64 = (0..r.rows()).map(|i| r[(i, i)]).sum();
        let sum: f64 = eig.values.iter().sum();
        prop_assert!((trace - sum).abs() < 1e-6 * trace.abs().max(1.0));
    }

    #[test]
    fn eigenvalues_sorted_descending(x in obs_matrix(8, 6)) {
        let r = correlation_matrix(&x).unwrap();
        let eig = jacobi_eigen(&r).unwrap();
        for w in eig.values.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-9);
        }
    }

    #[test]
    fn pca_scores_are_finite_and_centered(x in obs_matrix(10, 6)) {
        let pca = Pca::fit(&x, Retention::Kaiser).unwrap();
        prop_assert!(pca.scores().is_finite());
        for c in 0..pca.components() {
            let col = pca.scores().col(c);
            let m = mean(&col).unwrap();
            prop_assert!(m.abs() < 1e-7);
        }
    }

    #[test]
    fn pca_coverage_monotone_in_retention(x in obs_matrix(10, 6)) {
        let k1 = Pca::fit(&x, Retention::Fixed(1)).unwrap().coverage();
        let kall = Pca::fit(&x, Retention::All).unwrap().coverage();
        prop_assert!(kall + 1e-9 >= k1);
        prop_assert!(kall <= 1.0 + 1e-9);
    }

    #[test]
    fn euclidean_is_a_metric(
        a in proptest::collection::vec(-1e3..1e3f64, 4),
        b in proptest::collection::vec(-1e3..1e3f64, 4),
        c in proptest::collection::vec(-1e3..1e3f64, 4),
    ) {
        // Symmetry, identity, triangle inequality.
        prop_assert!((euclidean(&a, &b) - euclidean(&b, &a)).abs() < 1e-9);
        prop_assert!(euclidean(&a, &a) < 1e-12);
        prop_assert!(euclidean(&a, &c) <= euclidean(&a, &b) + euclidean(&b, &c) + 1e-9);
        prop_assert!(manhattan(&a, &c) <= manhattan(&a, &b) + manhattan(&b, &c) + 1e-9);
    }

    #[test]
    fn distance_matrix_agrees_with_direct_computation(x in obs_matrix(8, 4)) {
        let d = DistanceMatrix::from_observations(&x, Metric::Euclidean);
        for i in 0..x.rows() {
            for j in 0..x.rows() {
                let direct = euclidean(x.row(i), x.row(j));
                prop_assert!((d.get(i, j) - direct).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn ranks_are_a_permutation_sum(values in proptest::collection::vec(-1e6..1e6f64, 1..20)) {
        // Sum of ranks (with average ties) is always n(n+1)/2.
        let r = ranks(&values);
        let n = values.len() as f64;
        let sum: f64 = r.iter().sum();
        prop_assert!((sum - n * (n + 1.0) / 2.0).abs() < 1e-6);
    }

    #[test]
    fn geometric_mean_between_min_and_max(values in proptest::collection::vec(1e-3..1e3f64, 1..20)) {
        let g = geometric_mean(&values).unwrap();
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(g >= min - 1e-9 && g <= max + 1e-9);
    }

    #[test]
    fn projection_of_mean_row_is_origin(x in obs_matrix(10, 5)) {
        let pca = Pca::fit(&x, Retention::All).unwrap();
        let means = x.column_means();
        let proj = pca.project_row(&means).unwrap();
        for v in proj {
            prop_assert!(v.abs() < 1e-7);
        }
    }
}
