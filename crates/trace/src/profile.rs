//! Statistical workload profiles.
//!
//! A profile is the synthetic stand-in for a SPEC binary + input: it captures
//! the behavior that determines hardware-counter readings without encoding
//! any counter value directly.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::instruction::CACHE_LINE_BYTES;

/// Error from profile validation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ProfileError {
    /// A fraction was outside `[0, 1]` or a set of fractions exceeded 1.
    InvalidFraction {
        /// Name of the offending field.
        field: &'static str,
        /// The offending value (for sums, the sum).
        value: f64,
    },
    /// The memory model has no regions or a region is degenerate.
    InvalidMemoryModel {
        /// Human-readable reason.
        reason: &'static str,
    },
    /// A structural parameter was zero/empty where it must not be.
    InvalidParameter {
        /// Name of the offending field.
        field: &'static str,
    },
}

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileError::InvalidFraction { field, value } => {
                write!(f, "invalid fraction for {field}: {value}")
            }
            ProfileError::InvalidMemoryModel { reason } => {
                write!(f, "invalid memory model: {reason}")
            }
            ProfileError::InvalidParameter { field } => {
                write!(f, "invalid parameter: {field}")
            }
        }
    }
}

impl std::error::Error for ProfileError {}

/// Dynamic instruction mix as fractions of the instruction stream.
///
/// The remainder (`1 − loads − stores − branches − fp − simd`) executes as
/// integer ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InstructionMix {
    /// Fraction of loads.
    pub loads: f64,
    /// Fraction of stores.
    pub stores: f64,
    /// Fraction of conditional branches.
    pub branches: f64,
    /// Fraction of scalar floating-point operations.
    pub fp: f64,
    /// Fraction of SIMD operations.
    pub simd: f64,
}

impl Default for InstructionMix {
    fn default() -> Self {
        InstructionMix {
            loads: 0.25,
            stores: 0.08,
            branches: 0.12,
            fp: 0.0,
            simd: 0.0,
        }
    }
}

impl InstructionMix {
    /// Fraction of integer ALU instructions (the remainder).
    pub fn int_alu(&self) -> f64 {
        1.0 - self.loads - self.stores - self.branches - self.fp - self.simd
    }

    fn validate(&self) -> Result<(), ProfileError> {
        for (field, v) in [
            ("mix.loads", self.loads),
            ("mix.stores", self.stores),
            ("mix.branches", self.branches),
            ("mix.fp", self.fp),
            ("mix.simd", self.simd),
        ] {
            if !(0.0..=1.0).contains(&v) || !v.is_finite() {
                return Err(ProfileError::InvalidFraction { field, value: v });
            }
        }
        let sum = self.loads + self.stores + self.branches + self.fp + self.simd;
        if sum > 1.0 + 1e-9 {
            return Err(ProfileError::InvalidFraction {
                field: "mix (sum)",
                value: sum,
            });
        }
        Ok(())
    }
}

/// How addresses inside a data region are generated.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum AccessPattern {
    /// Sequential sweep with the given byte stride (wraps at region end).
    /// Captures streaming FP kernels (lbm, bwaves, roms).
    Streaming {
        /// Byte distance between consecutive accesses.
        stride: u64,
    },
    /// Uniform random line within the region. Captures pointer chasing and
    /// sparse data structures (mcf, omnetpp, xalancbmk).
    Random,
}

/// One weighted data-reuse region.
///
/// A region of `bytes` with `Random` access has a working set of
/// `bytes / 64` cache lines: it fits (hits) or doesn't (misses) per machine,
/// which is what produces machine-dependent MPKI.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Region {
    /// Region size in bytes.
    pub bytes: u64,
    /// Relative probability that a memory access falls in this region.
    pub weight: f64,
    /// Address pattern inside the region.
    pub pattern: AccessPattern,
}

impl Region {
    /// Convenience constructor for a random-access region.
    pub fn random(bytes: u64, weight: f64) -> Self {
        Region {
            bytes,
            weight,
            pattern: AccessPattern::Random,
        }
    }

    /// Convenience constructor for a streaming region.
    pub fn streaming(bytes: u64, weight: f64, stride: u64) -> Self {
        Region {
            bytes,
            weight,
            pattern: AccessPattern::Streaming { stride },
        }
    }
}

/// The data-side memory behavior: a mixture of reuse regions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemoryModel {
    /// Weighted regions; at least one required.
    pub regions: Vec<Region>,
}

impl Default for MemoryModel {
    fn default() -> Self {
        MemoryModel {
            regions: vec![Region::random(1 << 20, 1.0)],
        }
    }
}

impl MemoryModel {
    /// Total data footprint in bytes (sum of region sizes).
    pub fn footprint(&self) -> u64 {
        self.regions.iter().map(|r| r.bytes).sum()
    }

    fn validate(&self) -> Result<(), ProfileError> {
        if self.regions.is_empty() {
            return Err(ProfileError::InvalidMemoryModel {
                reason: "no regions",
            });
        }
        let mut total_weight = 0.0;
        for r in &self.regions {
            if r.bytes < CACHE_LINE_BYTES {
                return Err(ProfileError::InvalidMemoryModel {
                    reason: "region smaller than a cache line",
                });
            }
            if r.weight <= 0.0 || !r.weight.is_finite() {
                return Err(ProfileError::InvalidMemoryModel {
                    reason: "region weight must be positive and finite",
                });
            }
            if let AccessPattern::Streaming { stride } = r.pattern {
                if stride == 0 {
                    return Err(ProfileError::InvalidMemoryModel {
                        reason: "streaming stride must be nonzero",
                    });
                }
            }
            total_weight += r.weight;
        }
        if total_weight <= 0.0 {
            return Err(ProfileError::InvalidMemoryModel {
                reason: "total region weight must be positive",
            });
        }
        Ok(())
    }
}

/// Control-flow behavior parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BranchBehavior {
    /// Overall fraction of branches that are taken.
    pub taken_fraction: f64,
    /// Fraction of branch *sites* whose outcomes follow a short repeating
    /// pattern a history-based predictor can learn (1.0 = fully regular;
    /// 0.0 = biased coin flips, the hardest case).
    pub regularity: f64,
    /// Of the hard (non-easy) sites, the fraction whose outcomes follow
    /// learnable rotations; the rest are bias-weighted coins. History-based
    /// predictors profit from patterns, bimodal tables cannot — so this is
    /// the knob behind cross-machine branch sensitivity.
    pub pattern_share: f64,
    /// Number of static branch sites (controls BTB/history aliasing).
    pub static_branches: usize,
    /// How far individual branch biases spread around `taken_fraction`
    /// (0 = every branch identical, 1 = strongly bimodal biases).
    pub bias_spread: f64,
}

impl Default for BranchBehavior {
    fn default() -> Self {
        BranchBehavior {
            taken_fraction: 0.5,
            regularity: 0.9,
            pattern_share: 0.5,
            static_branches: 256,
            bias_spread: 0.5,
        }
    }
}

impl BranchBehavior {
    fn validate(&self) -> Result<(), ProfileError> {
        for (field, v) in [
            ("branches.taken_fraction", self.taken_fraction),
            ("branches.regularity", self.regularity),
            ("branches.pattern_share", self.pattern_share),
            ("branches.bias_spread", self.bias_spread),
        ] {
            if !(0.0..=1.0).contains(&v) || !v.is_finite() {
                return Err(ProfileError::InvalidFraction { field, value: v });
            }
        }
        if self.static_branches == 0 {
            return Err(ProfileError::InvalidParameter {
                field: "branches.static_branches",
            });
        }
        Ok(())
    }
}

/// Instruction-side footprint and locality.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CodeModel {
    /// Total static code footprint in bytes.
    pub footprint_bytes: u64,
    /// Fraction of dynamic instructions fetched from the hot region.
    pub hot_fraction: f64,
    /// Size of the hot region in bytes (≤ footprint).
    pub hot_bytes: u64,
}

impl Default for CodeModel {
    fn default() -> Self {
        CodeModel {
            footprint_bytes: 256 << 10,
            hot_fraction: 0.95,
            hot_bytes: 16 << 10,
        }
    }
}

impl CodeModel {
    fn validate(&self) -> Result<(), ProfileError> {
        if !(0.0..=1.0).contains(&self.hot_fraction) {
            return Err(ProfileError::InvalidFraction {
                field: "code.hot_fraction",
                value: self.hot_fraction,
            });
        }
        if self.footprint_bytes == 0 || self.hot_bytes == 0 {
            return Err(ProfileError::InvalidParameter {
                field: "code footprint",
            });
        }
        if self.hot_bytes > self.footprint_bytes {
            return Err(ProfileError::InvalidParameter {
                field: "code.hot_bytes > footprint_bytes",
            });
        }
        Ok(())
    }
}

/// A complete statistical workload description.
///
/// Construct through [`WorkloadProfile::builder`]; every constructed profile
/// is validated.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadProfile {
    name: String,
    /// Dynamic instruction count of the real workload, in billions
    /// (metadata; simulation samples a window of it).
    icount_billions: f64,
    mix: InstructionMix,
    memory: MemoryModel,
    branches: BranchBehavior,
    code: CodeModel,
    /// Fraction of instructions executed in kernel mode.
    kernel_fraction: f64,
    /// 0..1 knob for inter-instruction dependency density (drives
    /// core-bound stalls in the CPI model; high for blender/imagick).
    dependency_intensity: f64,
}

impl WorkloadProfile {
    /// Starts building a profile with the given name and default parameters.
    pub fn builder(name: impl Into<String>) -> ProfileBuilder {
        ProfileBuilder::new(name)
    }

    /// Workload name (e.g. `"605.mcf_s"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Dynamic instruction count of the real workload, in billions.
    pub fn icount_billions(&self) -> f64 {
        self.icount_billions
    }

    /// Instruction mix.
    pub fn mix(&self) -> &InstructionMix {
        &self.mix
    }

    /// Data memory model.
    pub fn memory(&self) -> &MemoryModel {
        &self.memory
    }

    /// Branch behavior parameters.
    pub fn branches(&self) -> &BranchBehavior {
        &self.branches
    }

    /// Code footprint model.
    pub fn code(&self) -> &CodeModel {
        &self.code
    }

    /// Fraction of kernel-mode instructions.
    pub fn kernel_fraction(&self) -> f64 {
        self.kernel_fraction
    }

    /// Inter-instruction dependency density (0..1).
    pub fn dependency_intensity(&self) -> f64 {
        self.dependency_intensity
    }

    /// Returns a renamed copy (used for input-set variants).
    pub fn with_name(&self, name: impl Into<String>) -> WorkloadProfile {
        let mut p = self.clone();
        p.name = name.into();
        p
    }

    /// Weighted blend of several profiles — the "aggregated benchmark" the
    /// paper compares individual input sets against (§IV-C).
    ///
    /// Scalar parameters are weighted means; memory regions are pooled with
    /// scaled weights.
    ///
    /// # Errors
    ///
    /// Returns [`ProfileError::InvalidParameter`] if `parts` is empty or any
    /// weight is non-positive.
    pub fn blend(
        name: impl Into<String>,
        parts: &[(&WorkloadProfile, f64)],
    ) -> Result<WorkloadProfile, ProfileError> {
        if parts.is_empty() || parts.iter().any(|(_, w)| *w <= 0.0) {
            return Err(ProfileError::InvalidParameter {
                field: "blend parts",
            });
        }
        let total: f64 = parts.iter().map(|(_, w)| w).sum();
        let wmean = |f: &dyn Fn(&WorkloadProfile) -> f64| -> f64 {
            parts.iter().map(|(p, w)| f(p) * w).sum::<f64>() / total
        };
        let mut regions: Vec<Region> = Vec::new();
        for (p, w) in parts {
            let pw: f64 = p.memory.regions.iter().map(|r| r.weight).sum();
            for r in &p.memory.regions {
                let weight = r.weight / pw * w / total;
                // Coalesce structurally identical regions (input-set
                // variants share geometry and differ only in weights), so
                // the blend behaves like the weighted mixture instead of a
                // workload with a multiplied region count.
                match regions
                    .iter_mut()
                    .find(|e| e.bytes == r.bytes && e.pattern == r.pattern)
                {
                    Some(existing) => existing.weight += weight,
                    None => regions.push(Region {
                        bytes: r.bytes,
                        weight,
                        pattern: r.pattern,
                    }),
                }
            }
        }
        let builder = ProfileBuilder {
            name: name.into(),
            icount_billions: wmean(&|p| p.icount_billions),
            mix: InstructionMix {
                loads: wmean(&|p| p.mix.loads),
                stores: wmean(&|p| p.mix.stores),
                branches: wmean(&|p| p.mix.branches),
                fp: wmean(&|p| p.mix.fp),
                simd: wmean(&|p| p.mix.simd),
            },
            memory: MemoryModel { regions },
            branches: BranchBehavior {
                taken_fraction: wmean(&|p| p.branches.taken_fraction),
                regularity: wmean(&|p| p.branches.regularity),
                pattern_share: wmean(&|p| p.branches.pattern_share),
                static_branches: (wmean(&|p| p.branches.static_branches as f64).round() as usize)
                    .max(1),
                bias_spread: wmean(&|p| p.branches.bias_spread),
            },
            code: CodeModel {
                footprint_bytes: wmean(&|p| p.code.footprint_bytes as f64).round() as u64,
                hot_fraction: wmean(&|p| p.code.hot_fraction),
                hot_bytes: wmean(&|p| p.code.hot_bytes as f64).round() as u64,
            },
            kernel_fraction: wmean(&|p| p.kernel_fraction),
            dependency_intensity: wmean(&|p| p.dependency_intensity),
        };
        builder.build()
    }
}

/// Builder for [`WorkloadProfile`] (non-consuming terminal `build`).
#[derive(Debug, Clone)]
pub struct ProfileBuilder {
    name: String,
    icount_billions: f64,
    mix: InstructionMix,
    memory: MemoryModel,
    branches: BranchBehavior,
    code: CodeModel,
    kernel_fraction: f64,
    dependency_intensity: f64,
}

impl ProfileBuilder {
    fn new(name: impl Into<String>) -> Self {
        ProfileBuilder {
            name: name.into(),
            icount_billions: 1.0,
            mix: InstructionMix::default(),
            memory: MemoryModel::default(),
            branches: BranchBehavior::default(),
            code: CodeModel::default(),
            kernel_fraction: 0.02,
            dependency_intensity: 0.3,
        }
    }

    /// Sets the real workload's dynamic instruction count in billions.
    pub fn icount_billions(&mut self, v: f64) -> &mut Self {
        self.icount_billions = v;
        self
    }

    /// Sets the load fraction.
    pub fn loads(&mut self, v: f64) -> &mut Self {
        self.mix.loads = v;
        self
    }

    /// Sets the store fraction.
    pub fn stores(&mut self, v: f64) -> &mut Self {
        self.mix.stores = v;
        self
    }

    /// Sets the branch fraction.
    pub fn branches(&mut self, v: f64) -> &mut Self {
        self.mix.branches = v;
        self
    }

    /// Sets the scalar-FP fraction.
    pub fn fp(&mut self, v: f64) -> &mut Self {
        self.mix.fp = v;
        self
    }

    /// Sets the SIMD fraction.
    pub fn simd(&mut self, v: f64) -> &mut Self {
        self.mix.simd = v;
        self
    }

    /// Replaces the memory model's regions.
    pub fn regions(&mut self, regions: Vec<Region>) -> &mut Self {
        self.memory = MemoryModel { regions };
        self
    }

    /// Sets the branch-behavior parameters.
    pub fn branch_behavior(&mut self, b: BranchBehavior) -> &mut Self {
        self.branches = b;
        self
    }

    /// Sets the code-footprint model.
    pub fn code_model(&mut self, c: CodeModel) -> &mut Self {
        self.code = c;
        self
    }

    /// Sets the kernel-mode instruction fraction.
    pub fn kernel_fraction(&mut self, v: f64) -> &mut Self {
        self.kernel_fraction = v;
        self
    }

    /// Sets the dependency-intensity knob (0..1).
    pub fn dependency_intensity(&mut self, v: f64) -> &mut Self {
        self.dependency_intensity = v;
        self
    }

    /// Validates and produces the profile.
    ///
    /// # Errors
    ///
    /// Returns a [`ProfileError`] describing the first invalid parameter.
    pub fn build(&self) -> Result<WorkloadProfile, ProfileError> {
        self.mix.validate()?;
        self.memory.validate()?;
        self.branches.validate()?;
        self.code.validate()?;
        for (field, v) in [
            ("kernel_fraction", self.kernel_fraction),
            ("dependency_intensity", self.dependency_intensity),
        ] {
            if !(0.0..=1.0).contains(&v) || !v.is_finite() {
                return Err(ProfileError::InvalidFraction { field, value: v });
            }
        }
        if self.name.is_empty() {
            return Err(ProfileError::InvalidParameter { field: "name" });
        }
        if self.icount_billions <= 0.0 || self.icount_billions.is_nan() {
            return Err(ProfileError::InvalidParameter {
                field: "icount_billions",
            });
        }
        Ok(WorkloadProfile {
            name: self.name.clone(),
            icount_billions: self.icount_billions,
            mix: self.mix,
            memory: self.memory.clone(),
            branches: self.branches,
            code: self.code,
            kernel_fraction: self.kernel_fraction,
            dependency_intensity: self.dependency_intensity,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_builder_builds() {
        let p = WorkloadProfile::builder("x").build().unwrap();
        assert_eq!(p.name(), "x");
        assert!(p.mix().int_alu() > 0.0);
    }

    #[test]
    fn rejects_bad_fractions() {
        assert!(matches!(
            WorkloadProfile::builder("x").loads(1.5).build(),
            Err(ProfileError::InvalidFraction { .. })
        ));
        assert!(matches!(
            WorkloadProfile::builder("x").loads(0.6).stores(0.6).build(),
            Err(ProfileError::InvalidFraction {
                field: "mix (sum)",
                ..
            })
        ));
    }

    #[test]
    fn rejects_empty_name_and_zero_icount() {
        assert!(WorkloadProfile::builder("").build().is_err());
        assert!(WorkloadProfile::builder("x")
            .icount_billions(0.0)
            .build()
            .is_err());
    }

    #[test]
    fn rejects_bad_memory_model() {
        assert!(matches!(
            WorkloadProfile::builder("x").regions(vec![]).build(),
            Err(ProfileError::InvalidMemoryModel { .. })
        ));
        assert!(WorkloadProfile::builder("x")
            .regions(vec![Region::random(32, 1.0)])
            .build()
            .is_err());
        assert!(WorkloadProfile::builder("x")
            .regions(vec![Region::random(4096, 0.0)])
            .build()
            .is_err());
        assert!(WorkloadProfile::builder("x")
            .regions(vec![Region::streaming(4096, 1.0, 0)])
            .build()
            .is_err());
    }

    #[test]
    fn rejects_bad_code_model() {
        let bad = CodeModel {
            footprint_bytes: 1024,
            hot_fraction: 0.9,
            hot_bytes: 2048,
        };
        assert!(WorkloadProfile::builder("x")
            .code_model(bad)
            .build()
            .is_err());
    }

    #[test]
    fn rejects_zero_static_branches() {
        let bad = BranchBehavior {
            static_branches: 0,
            ..Default::default()
        };
        assert!(WorkloadProfile::builder("x")
            .branch_behavior(bad)
            .build()
            .is_err());
    }

    #[test]
    fn memory_footprint_sums_regions() {
        let p = WorkloadProfile::builder("x")
            .regions(vec![
                Region::random(4096, 1.0),
                Region::streaming(8192, 1.0, 64),
            ])
            .build()
            .unwrap();
        assert_eq!(p.memory().footprint(), 12288);
    }

    #[test]
    fn blend_averages_scalars_and_pools_regions() {
        let a = WorkloadProfile::builder("a")
            .loads(0.2)
            .regions(vec![Region::random(4096, 1.0)])
            .build()
            .unwrap();
        let b = WorkloadProfile::builder("b")
            .loads(0.4)
            .regions(vec![Region::random(1 << 20, 2.0)])
            .build()
            .unwrap();
        let ab = WorkloadProfile::blend("ab", &[(&a, 1.0), (&b, 1.0)]).unwrap();
        assert!((ab.mix().loads - 0.3).abs() < 1e-12);
        assert_eq!(ab.memory().regions.len(), 2);
        // Region weights are normalized per source profile then scaled.
        let total_w: f64 = ab.memory().regions.iter().map(|r| r.weight).sum();
        assert!((total_w - 1.0).abs() < 1e-9);
    }

    #[test]
    fn blend_rejects_empty_and_bad_weights() {
        let a = WorkloadProfile::builder("a").build().unwrap();
        assert!(WorkloadProfile::blend("x", &[]).is_err());
        assert!(WorkloadProfile::blend("x", &[(&a, 0.0)]).is_err());
    }

    #[test]
    fn with_name_renames_only() {
        let a = WorkloadProfile::builder("a").loads(0.33).build().unwrap();
        let b = a.with_name("b");
        assert_eq!(b.name(), "b");
        assert_eq!(b.mix().loads, a.mix().loads);
    }

    #[test]
    fn serde_round_trip() {
        let p = WorkloadProfile::builder("rt").fp(0.2).build().unwrap();
        let json = serde_json_round_trip(&p);
        assert_eq!(json.name(), "rt");
        assert_eq!(json.mix().fp, 0.2);
    }

    // Minimal serde check without pulling serde_json: use the bincode-free
    // approach of serializing to a `serde` test shim via Debug equality on a
    // clone. (Full JSON round-trips are exercised in the workloads crate.)
    fn serde_json_round_trip(p: &WorkloadProfile) -> WorkloadProfile {
        p.clone()
    }
}
