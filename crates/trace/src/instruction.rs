//! The instruction vocabulary shared between trace generation and the
//! microarchitecture simulator.

use serde::{Deserialize, Serialize};

/// Architectural size of one instruction in bytes (RISC-style fixed width;
/// instruction-cache behavior is insensitive to the exact constant).
pub const INSTRUCTION_BYTES: u64 = 4;

/// Cache line size assumed by address generation (bytes).
pub const CACHE_LINE_BYTES: u64 = 64;

/// Page size assumed by TLB modeling (bytes).
pub const PAGE_BYTES: u64 = 4096;

/// Operation class of a dynamic instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Kind {
    /// Memory read from the given virtual address.
    Load {
        /// Virtual byte address accessed.
        addr: u64,
    },
    /// Memory write to the given virtual address.
    Store {
        /// Virtual byte address accessed.
        addr: u64,
    },
    /// Conditional branch.
    Branch {
        /// Branch target if taken.
        target: u64,
        /// Architectural outcome.
        taken: bool,
    },
    /// Integer ALU operation.
    IntAlu,
    /// Scalar floating-point operation.
    FpAlu,
    /// SIMD/vector operation.
    Simd,
}

/// One dynamic instruction: a program counter plus an operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Instruction {
    /// Virtual address of the instruction itself (for I-cache/I-TLB/BTB).
    pub pc: u64,
    /// Operation class and operands.
    pub kind: Kind,
    /// True if the instruction executes in kernel mode (syscall servicing).
    pub kernel: bool,
}

impl Instruction {
    /// The data address touched by this instruction, if it is a load/store.
    pub fn data_address(&self) -> Option<u64> {
        match self.kind {
            Kind::Load { addr } | Kind::Store { addr } => Some(addr),
            _ => None,
        }
    }

    /// True for loads.
    pub fn is_load(&self) -> bool {
        matches!(self.kind, Kind::Load { .. })
    }

    /// True for stores.
    pub fn is_store(&self) -> bool {
        matches!(self.kind, Kind::Store { .. })
    }

    /// True for conditional branches.
    pub fn is_branch(&self) -> bool {
        matches!(self.kind, Kind::Branch { .. })
    }

    /// True for scalar FP or SIMD operations.
    pub fn is_fp(&self) -> bool {
        matches!(self.kind, Kind::FpAlu | Kind::Simd)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_address_only_for_memory_ops() {
        let ld = Instruction {
            pc: 0x1000,
            kind: Kind::Load { addr: 0x2000 },
            kernel: false,
        };
        assert_eq!(ld.data_address(), Some(0x2000));
        assert!(ld.is_load() && !ld.is_store() && !ld.is_branch() && !ld.is_fp());

        let br = Instruction {
            pc: 0x1004,
            kind: Kind::Branch {
                target: 0x1100,
                taken: true,
            },
            kernel: false,
        };
        assert_eq!(br.data_address(), None);
        assert!(br.is_branch());
    }

    #[test]
    fn fp_classification() {
        let fp = Instruction {
            pc: 0,
            kind: Kind::FpAlu,
            kernel: false,
        };
        let simd = Instruction {
            pc: 0,
            kind: Kind::Simd,
            kernel: false,
        };
        let int = Instruction {
            pc: 0,
            kind: Kind::IntAlu,
            kernel: false,
        };
        assert!(fp.is_fp() && simd.is_fp() && !int.is_fp());
    }
}
