//! Synthetic instruction-trace generation from statistical workload profiles.
//!
//! The HPCA'18 study measures SPEC CPU2017 binaries with hardware counters.
//! Those binaries (and the machines) are not available here, so this crate
//! provides the substitute substrate: a [`WorkloadProfile`] captures the
//! *statistical* behavior of a benchmark — instruction mix, data-reuse
//! regions, branch predictability, code footprint — and a [`TraceGenerator`]
//! expands a profile into a deterministic, seeded instruction stream that a
//! microarchitecture simulator can consume.
//!
//! The crucial property is that a profile does **not** encode miss rates
//! directly. It encodes footprints and access patterns; miss rates then
//! *emerge* from the interaction with a specific machine's cache/TLB/branch
//! predictor geometry, which is exactly the mechanism that makes the paper's
//! cross-machine analyses (PCA features per machine, Table IX sensitivity)
//! meaningful.
//!
//! # Example
//!
//! ```
//! use horizon_trace::{TraceGenerator, WorkloadProfile};
//!
//! let profile = WorkloadProfile::builder("toy")
//!     .loads(0.3)
//!     .stores(0.1)
//!     .branches(0.15)
//!     .build()?;
//! let trace: Vec<_> = TraceGenerator::new(&profile, 42).take(1000).collect();
//! assert_eq!(trace.len(), 1000);
//! # Ok::<(), horizon_trace::ProfileError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod generator;
mod instruction;
mod profile;

pub use generator::{hot_code_layout, kernel_code_layout, region_layout, TraceGenerator};
pub use instruction::{Instruction, Kind, CACHE_LINE_BYTES, INSTRUCTION_BYTES, PAGE_BYTES};
pub use profile::{
    AccessPattern, BranchBehavior, CodeModel, InstructionMix, MemoryModel, ProfileBuilder,
    ProfileError, Region, WorkloadProfile,
};
