//! Expansion of a [`WorkloadProfile`] into a deterministic instruction
//! stream.
//!
//! Control flow is modeled as a *block automaton*: the hot code region is
//! tiled with basic blocks, each ending in its own static branch; a taken
//! branch jumps to a fixed (randomly chosen at construction) target block,
//! a not-taken branch falls through to the next sequential block. This makes
//! global branch history informative — history-based predictors (gshare,
//! TAGE) genuinely outperform bimodal tables, as on real code — while the
//! block tiling pins the instruction-cache footprint to the profile's hot
//! region size.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::instruction::{Instruction, Kind, INSTRUCTION_BYTES};
use crate::profile::{AccessPattern, WorkloadProfile};

/// Base virtual address of user code.
const CODE_BASE: u64 = 0x0040_0000;
/// Base virtual address of kernel code (separate footprint → extra I-side
/// pressure when the kernel fraction is high, as in database workloads).
const KERNEL_CODE_BASE: u64 = 0xFFFF_8000_0000_0000;
/// Size of the synthetic kernel's hot code path.
const KERNEL_CODE_BYTES: u64 = 48 << 10;
/// Base virtual address of the data heap.
const DATA_BASE: u64 = 0x1000_0000_0000;
/// Period of the repeating outcome pattern at "regular" branch sites.
const PATTERN_PERIOD: u32 = 16;

/// How a static branch site produces outcomes.
///
/// Real branch predictability is dominated by *bias*: most branches go one
/// way nearly always. The profile's `regularity` is the fraction of such
/// easy sites; the remainder are hard, split between history-learnable
/// rotations (pattern) and bias-weighted coin flips.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SiteClass {
    /// Strongly biased (≈98% one direction): every predictor gets these.
    Easy,
    /// Repeating taken/not-taken rotation: history predictors learn these,
    /// bimodal tables cannot.
    Pattern,
    /// Bias-weighted coin flip: nobody does better than the bias.
    Coin,
}

/// Parameters of one static branch site (outcome state lives per block).
#[derive(Debug, Clone, Copy)]
struct BranchSite {
    class: SiteClass,
    /// Probability this branch is taken (Easy: near 0/1; hard: near the
    /// profile's taken fraction).
    bias: f64,
}

/// One basic block of the hot-code automaton.
#[derive(Debug, Clone, Copy)]
struct Block {
    /// Start address; instructions run sequentially from here.
    pc: u64,
    /// Non-branch instructions before the terminating branch.
    len: u32,
    /// Index into the site table for the terminating branch.
    site: usize,
    /// Successor block if the branch is taken (fall-through is `self + 1`).
    next_taken: usize,
    /// Per-block rotation phase for [`SiteClass::Pattern`] sites. Keeping
    /// phase per block makes each branch PC's outcome sequence an exact
    /// rotation, so history-based predictors can learn it.
    phase: u32,
}

/// Per-region address-generation state.
#[derive(Debug, Clone)]
struct RegionState {
    base: u64,
    bytes: u64,
    pattern: AccessPattern,
    cursor: u64,
    /// Cumulative weight threshold for region selection.
    cum_weight: f64,
}

/// Where the generator currently executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Inside hot-automaton block `current`.
    Hot,
    /// Inside a transient cold-code or kernel diversion.
    Diversion {
        /// Kernel-mode diversion (fetches from kernel code space).
        kernel: bool,
    },
}

/// An infinite, seeded, deterministic instruction stream realizing a
/// [`WorkloadProfile`].
///
/// The generator is an [`Iterator`]: take as many instructions as the
/// simulation budget allows.
///
/// # Example
///
/// ```
/// use horizon_trace::{TraceGenerator, WorkloadProfile};
///
/// let p = WorkloadProfile::builder("demo").branches(0.2).build()?;
/// let branches = TraceGenerator::new(&p, 7)
///     .take(20_000)
///     .filter(|i| i.is_branch())
///     .count();
/// // The realized branch fraction tracks the profile.
/// assert!((branches as f64 / 20_000.0 - 0.2).abs() < 0.03);
/// # Ok::<(), horizon_trace::ProfileError>(())
/// ```
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    rng: SmallRng,
    // Mix probabilities for non-branch instructions (renormalized).
    p_load: f64,
    p_store: f64,
    p_fp: f64,
    p_simd: f64,
    branch_fraction: f64,
    taken_fraction: f64,
    // Control-flow automaton.
    blocks: Vec<Block>,
    sites: Vec<BranchSite>,
    current: usize,
    mode: Mode,
    /// Automaton block to resume at when a diversion ends.
    resume: usize,
    /// Current fetch address.
    pc: u64,
    /// Wrap bounds for diversion fetch.
    div_base: u64,
    div_span: u64,
    /// Non-branch instructions left before the block's branch.
    remaining: u32,
    kernel_fraction: f64,
    cold_fraction: f64,
    cold_base: u64,
    cold_span: u64,
    // Data side.
    regions: Vec<RegionState>,
    total_weight: f64,
}

impl TraceGenerator {
    /// Creates a generator for `profile` with the given seed.
    ///
    /// Identical `(profile, seed)` pairs produce identical streams.
    pub fn new(profile: &WorkloadProfile, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xD6E8_FEB8_6659_FD93);
        let mix = profile.mix();
        let b = profile.branches();
        let code = profile.code();

        // Mean non-branch instructions per block so that the realized branch
        // share equals the mix (block = len non-branch + 1 branch).
        let mean_len = if mix.branches > 0.0 {
            (1.0 / mix.branches - 1.0).max(0.0)
        } else {
            31.0
        };

        // Tile the hot region with blocks of geometric length.
        let mut blocks = Vec::new();
        let mut cursor = CODE_BASE;
        let hot_end = CODE_BASE + code.hot_bytes;
        while cursor < hot_end && blocks.len() < 65_536 {
            let mut len = geometric_len(&mut rng, mean_len);
            // Truncate the last tile so the block (incl. its branch slot)
            // stays inside the hot region.
            let room = (hot_end - cursor) / INSTRUCTION_BYTES;
            if u64::from(len) + 1 > room {
                len = room.saturating_sub(1) as u32;
            }
            blocks.push(Block {
                pc: cursor,
                len,
                site: 0,       // assigned below
                next_taken: 0, // assigned below
                phase: 0,      // assigned below
            });
            cursor += (len as u64 + 1) * INSTRUCTION_BYTES;
        }
        let n_blocks = blocks.len().max(1);

        // One site per block up to the profile's static-branch budget;
        // beyond that, blocks share site state cyclically (aliasing, as in
        // large irregular codes).
        let n_sites = b.static_branches.min(n_blocks).max(1);
        let mut sites = Vec::with_capacity(n_sites);
        for _ in 0..n_sites {
            let (class, bias) = if rng.gen_bool(b.regularity) {
                // Easy: strongly biased toward one direction, chosen so the
                // population's taken rate matches the profile.
                if rng.gen_bool(b.taken_fraction.clamp(0.0, 1.0)) {
                    (SiteClass::Easy, 0.998)
                } else {
                    (SiteClass::Easy, 0.002)
                }
            } else {
                // Hard: half learnable rotations, half coins, biased near
                // the taken fraction with the profile's spread.
                let jitter: f64 = rng.gen_range(-1.0..1.0) * b.bias_spread * 0.5;
                let bias = (b.taken_fraction + jitter).clamp(0.1, 0.9);
                if rng.gen_bool(b.pattern_share.clamp(0.0, 1.0)) {
                    (SiteClass::Pattern, bias)
                } else {
                    (SiteClass::Coin, bias)
                }
            };
            sites.push(BranchSite { class, bias });
        }
        // Taken targets form a random permutation: every block has exactly
        // one taken-edge inflow, keeping the stationary visit distribution
        // near-uniform so the realized instruction mix matches the profile.
        let mut permutation: Vec<usize> = (0..n_blocks).collect();
        for i in (1..n_blocks).rev() {
            let j = rng.gen_range(0..=i);
            permutation.swap(i, j);
        }
        for (i, blk) in blocks.iter_mut().enumerate() {
            blk.site = i % n_sites;
            blk.next_taken = permutation[i];
            blk.phase = rng.gen_range(0..PATTERN_PERIOD);
        }

        // Data regions, laid out with guard pages.
        let mut regions = Vec::with_capacity(profile.memory().regions.len());
        let mut base = DATA_BASE;
        let mut cum = 0.0;
        let total_weight: f64 = profile.memory().regions.iter().map(|r| r.weight).sum();
        for r in &profile.memory().regions {
            cum += r.weight;
            regions.push(RegionState {
                base,
                bytes: r.bytes,
                pattern: r.pattern,
                cursor: 0,
                cum_weight: cum,
            });
            base = (base + r.bytes + 4096) & !4095;
        }

        let non_branch = (1.0 - mix.branches).max(f64::MIN_POSITIVE);
        let cold_span = code.footprint_bytes.saturating_sub(code.hot_bytes);
        let first_len = blocks[0].len;
        let first_pc = blocks[0].pc;
        TraceGenerator {
            rng,
            p_load: mix.loads / non_branch,
            p_store: mix.stores / non_branch,
            p_fp: mix.fp / non_branch,
            p_simd: mix.simd / non_branch,
            branch_fraction: mix.branches,
            taken_fraction: b.taken_fraction,
            blocks,
            sites,
            current: 0,
            mode: Mode::Hot,
            resume: 0,
            pc: first_pc,
            div_base: CODE_BASE,
            div_span: code.hot_bytes.max(INSTRUCTION_BYTES),
            remaining: first_len,
            kernel_fraction: profile.kernel_fraction(),
            cold_fraction: 1.0 - code.hot_fraction,
            cold_base: CODE_BASE + code.hot_bytes,
            cold_span: cold_span.max(INSTRUCTION_BYTES),
            regions,
            total_weight,
        }
    }

    /// Moves to automaton block `next`, possibly via a diversion first.
    fn enter_next(&mut self, next: usize) {
        let kernel = self.kernel_fraction > 0.0 && self.rng.gen_bool(self.kernel_fraction);
        let cold = !kernel
            && self.cold_fraction > 0.0
            && self.cold_span > INSTRUCTION_BYTES
            && self.rng.gen_bool(self.cold_fraction);
        if kernel || cold {
            self.resume = next;
            self.mode = Mode::Diversion { kernel };
            let (base, span) = if kernel {
                // Most kernel entries run the same hot syscall paths; only
                // occasionally does execution stray into the wider kernel.
                if self.rng.gen_bool(0.9) {
                    (KERNEL_CODE_BASE, (8 << 10).min(KERNEL_CODE_BYTES))
                } else {
                    (KERNEL_CODE_BASE, KERNEL_CODE_BYTES)
                }
            } else {
                (self.cold_base, self.cold_span)
            };
            let slots = (span / INSTRUCTION_BYTES).max(1);
            self.pc = base + self.rng.gen_range(0..slots) * INSTRUCTION_BYTES;
            self.div_base = base;
            self.div_span = span;
            let mean_len = if self.branch_fraction > 0.0 {
                (1.0 / self.branch_fraction - 1.0).max(0.0)
            } else {
                31.0
            };
            self.remaining = geometric_len(&mut self.rng, mean_len);
        } else {
            self.mode = Mode::Hot;
            self.current = next;
            let blk = self.blocks[next];
            self.pc = blk.pc;
            self.remaining = blk.len;
        }
    }

    /// Emits the branch ending the current block/diversion and advances
    /// control flow. Returns `None` when the profile has no branches.
    fn finish_block(&mut self, kernel_mode: bool) -> Option<Instruction> {
        match self.mode {
            Mode::Hot => {
                let blk = self.blocks[self.current];
                let fall_through = (self.current + 1) % self.blocks.len();
                if self.branch_fraction == 0.0 {
                    self.enter_next(fall_through);
                    return None;
                }
                let site = self.sites[blk.site];
                let taken = match site.class {
                    SiteClass::Easy | SiteClass::Coin => self.rng.gen_bool(site.bias),
                    SiteClass::Pattern => {
                        let takens = (site.bias * PATTERN_PERIOD as f64).round() as u32;
                        let t = self.blocks[self.current].phase < takens;
                        let blk_mut = &mut self.blocks[self.current];
                        blk_mut.phase = (blk_mut.phase + 1) % PATTERN_PERIOD;
                        t
                    }
                };
                let branch_pc = blk.pc + blk.len as u64 * INSTRUCTION_BYTES;
                // ε-perturbation on taken targets keeps the block automaton
                // ergodic: with fully fixed targets the near-deterministic
                // outcomes collapse the trajectory into a small attractor,
                // shrinking the code footprint and skewing the visit mix.
                let target_block = if taken {
                    if self.rng.gen_bool(0.15) {
                        self.rng.gen_range(0..self.blocks.len())
                    } else {
                        blk.next_taken
                    }
                } else {
                    fall_through
                };
                let target = self.blocks[target_block].pc;
                self.enter_next(target_block);
                Some(Instruction {
                    pc: branch_pc,
                    kind: Kind::Branch { target, taken },
                    kernel: kernel_mode,
                })
            }
            Mode::Diversion { kernel } => {
                let resume = self.resume;
                if self.branch_fraction == 0.0 {
                    self.enter_next(resume);
                    return None;
                }
                // Diversion branches are one-off sites: biased coin.
                let taken = self.rng.gen_bool(self.taken_fraction.clamp(0.02, 0.98));
                let branch_pc = self.pc;
                let target = self.blocks[resume].pc;
                // Re-rolling through enter_next lets diversions chain, so
                // the realized kernel share matches the profile fraction.
                self.enter_next(resume);
                Some(Instruction {
                    pc: branch_pc,
                    kind: Kind::Branch { target, taken },
                    kernel,
                })
            }
        }
    }

    /// Generates a data address according to the region mixture.
    fn data_address(&mut self) -> u64 {
        let pick: f64 = self.rng.gen_range(0.0..self.total_weight);
        // Regions are few (≤ ~6); linear scan beats binary search here.
        let region = self
            .regions
            .iter_mut()
            .find(|r| pick < r.cum_weight)
            .expect("cumulative weights cover total");
        match region.pattern {
            AccessPattern::Streaming { stride } => {
                region.cursor = (region.cursor + stride) % region.bytes;
                region.base + region.cursor
            }
            AccessPattern::Random => {
                let lines = (region.bytes / 64).max(1);
                let line = self.rng.gen_range(0..lines);
                region.base + line * 64
            }
        }
    }
}

/// The deterministic virtual-address layout of a profile's data regions:
/// `(base, bytes)` per region, in declaration order. Mirrors the layout the
/// generator uses, so simulators can pre-warm caches/TLBs without consuming
/// trace randomness.
pub fn region_layout(profile: &WorkloadProfile) -> Vec<(u64, u64)> {
    let mut base = DATA_BASE;
    let mut out = Vec::with_capacity(profile.memory().regions.len());
    for r in &profile.memory().regions {
        out.push((base, r.bytes));
        base = (base + r.bytes + 4096) & !4095;
    }
    out
}

/// The virtual-address range of the profile's hot code region.
pub fn hot_code_layout(profile: &WorkloadProfile) -> (u64, u64) {
    (CODE_BASE, profile.code().hot_bytes)
}

/// The virtual-address range of the synthetic kernel's code.
pub fn kernel_code_layout() -> (u64, u64) {
    (KERNEL_CODE_BASE, KERNEL_CODE_BYTES)
}

/// Geometric-ish block length with the given mean, capped at 8× the mean.
fn geometric_len(rng: &mut SmallRng, mean: f64) -> u32 {
    if mean <= 0.0 {
        return 0;
    }
    let p = 1.0 / (mean + 1.0);
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let len = (u.ln() / (1.0 - p).ln()).floor();
    len.clamp(0.0, (mean * 8.0).max(4.0)) as u32
}

impl Iterator for TraceGenerator {
    type Item = Instruction;

    fn next(&mut self) -> Option<Instruction> {
        let kernel_mode = matches!(self.mode, Mode::Diversion { kernel: true });
        loop {
            if self.remaining == 0 {
                if let Some(branch) = self.finish_block(kernel_mode) {
                    return Some(branch);
                }
                // Profile without branches: control moved on; emit from the
                // new block on the next loop iteration.
                continue;
            }
            self.remaining -= 1;
            let pc = self.pc;
            self.pc += INSTRUCTION_BYTES;
            // Keep diversion fetch inside its region.
            if matches!(self.mode, Mode::Diversion { .. })
                && self.pc >= self.div_base + self.div_span
            {
                self.pc = self.div_base;
            }
            let u: f64 = self.rng.gen();
            let kind = if u < self.p_load {
                Kind::Load {
                    addr: self.data_address(),
                }
            } else if u < self.p_load + self.p_store {
                Kind::Store {
                    addr: self.data_address(),
                }
            } else if u < self.p_load + self.p_store + self.p_fp {
                Kind::FpAlu
            } else if u < self.p_load + self.p_store + self.p_fp + self.p_simd {
                Kind::Simd
            } else {
                Kind::IntAlu
            };
            return Some(Instruction {
                pc,
                kind,
                kernel: kernel_mode,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{BranchBehavior, CodeModel, Region};

    fn profile() -> WorkloadProfile {
        WorkloadProfile::builder("t")
            .loads(0.30)
            .stores(0.10)
            .branches(0.15)
            .fp(0.05)
            .simd(0.05)
            .build()
            .unwrap()
    }

    #[test]
    fn deterministic_for_same_seed() {
        let p = profile();
        let a: Vec<_> = TraceGenerator::new(&p, 1).take(5000).collect();
        let b: Vec<_> = TraceGenerator::new(&p, 1).take(5000).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let p = profile();
        let a: Vec<_> = TraceGenerator::new(&p, 1).take(1000).collect();
        let b: Vec<_> = TraceGenerator::new(&p, 2).take(1000).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn realized_mix_tracks_profile() {
        let p = profile();
        let n = 200_000;
        let trace: Vec<_> = TraceGenerator::new(&p, 3).take(n).collect();
        let frac = |f: &dyn Fn(&Instruction) -> bool| {
            trace.iter().filter(|i| f(i)).count() as f64 / n as f64
        };
        assert!((frac(&|i| i.is_load()) - 0.30).abs() < 0.02);
        assert!((frac(&|i| i.is_store()) - 0.10).abs() < 0.02);
        assert!((frac(&|i| i.is_branch()) - 0.15).abs() < 0.02);
        assert!((frac(&|i| i.is_fp()) - 0.10).abs() < 0.02);
    }

    #[test]
    fn taken_fraction_tracks_profile() {
        let b = BranchBehavior {
            taken_fraction: 0.7,
            regularity: 0.9,
            pattern_share: 0.5,
            static_branches: 4096,
            bias_spread: 0.2,
        };
        let p = WorkloadProfile::builder("t")
            .branches(0.2)
            .branch_behavior(b)
            .build()
            .unwrap();
        let trace: Vec<_> = TraceGenerator::new(&p, 5).take(300_000).collect();
        let (mut taken, mut total) = (0usize, 0usize);
        for i in &trace {
            if let Kind::Branch { taken: t, .. } = i.kind {
                total += 1;
                taken += t as usize;
            }
        }
        let f = taken as f64 / total as f64;
        assert!((f - 0.7).abs() < 0.08, "taken fraction {f}");
    }

    #[test]
    fn addresses_stay_within_regions() {
        let p = WorkloadProfile::builder("t")
            .loads(0.5)
            .regions(vec![
                Region::random(1 << 16, 1.0),
                Region::streaming(1 << 14, 1.0, 64),
            ])
            .build()
            .unwrap();
        let spans: Vec<(u64, u64)> = {
            // Recompute expected bases (mirrors generator layout logic).
            let mut base = DATA_BASE;
            let mut out = Vec::new();
            for bytes in [1u64 << 16, 1 << 14] {
                out.push((base, base + bytes));
                base = (base + bytes + 4096) & !4095;
            }
            out
        };
        for inst in TraceGenerator::new(&p, 11).take(50_000) {
            if let Some(a) = inst.data_address() {
                assert!(
                    spans.iter().any(|&(lo, hi)| a >= lo && a < hi),
                    "address {a:#x} outside all regions"
                );
            }
        }
    }

    #[test]
    fn streaming_region_walks_sequentially() {
        let p = WorkloadProfile::builder("t")
            .loads(1.0)
            .stores(0.0)
            .branches(0.0)
            .regions(vec![Region::streaming(1 << 20, 1.0, 64)])
            .build()
            .unwrap();
        let addrs: Vec<u64> = TraceGenerator::new(&p, 1)
            .take(1000)
            .filter_map(|i| i.data_address())
            .collect();
        for w in addrs.windows(2) {
            let delta = w[1].wrapping_sub(w[0]);
            // Either the fixed stride or the wrap-around.
            assert!(delta == 64 || w[1] < w[0]);
        }
    }

    #[test]
    fn no_branches_profile_emits_no_branches() {
        let p = WorkloadProfile::builder("t").branches(0.0).build().unwrap();
        assert!(TraceGenerator::new(&p, 1)
            .take(10_000)
            .all(|i| !i.is_branch()));
    }

    #[test]
    fn kernel_fraction_respected() {
        let p = WorkloadProfile::builder("t")
            .kernel_fraction(0.3)
            .build()
            .unwrap();
        let n = 100_000;
        let k = TraceGenerator::new(&p, 9)
            .take(n)
            .filter(|i| i.kernel)
            .count();
        assert!(
            (k as f64 / n as f64 - 0.3).abs() < 0.06,
            "{}",
            k as f64 / n as f64
        );
        // Kernel instructions fetch from the kernel code range.
        for i in TraceGenerator::new(&p, 9).take(10_000) {
            if i.kernel {
                assert!(i.pc >= KERNEL_CODE_BASE);
            } else {
                assert!(i.pc < KERNEL_CODE_BASE);
            }
        }
    }

    #[test]
    fn small_hot_code_reuses_pcs() {
        let tight = CodeModel {
            footprint_bytes: 4096,
            hot_fraction: 1.0,
            hot_bytes: 4096,
        };
        let p = WorkloadProfile::builder("t")
            .code_model(tight)
            .kernel_fraction(0.0)
            .build()
            .unwrap();
        let pcs: std::collections::HashSet<u64> = TraceGenerator::new(&p, 2)
            .take(50_000)
            .map(|i| i.pc)
            .collect();
        // All fetches fall within the 4 KiB footprint.
        assert!(pcs.len() <= 1024, "{} distinct pcs", pcs.len());
        assert!(pcs
            .iter()
            .all(|&pc| (CODE_BASE..CODE_BASE + 4096).contains(&pc)));
    }

    #[test]
    fn branch_pcs_are_stable_per_block() {
        // Every branch PC observed must recur (finite set = static sites).
        let p = WorkloadProfile::builder("t")
            .branches(0.25)
            .kernel_fraction(0.0)
            .code_model(CodeModel {
                footprint_bytes: 8192,
                hot_fraction: 1.0,
                hot_bytes: 8192,
            })
            .build()
            .unwrap();
        let branch_pcs: Vec<u64> = TraceGenerator::new(&p, 3)
            .take(100_000)
            .filter(|i| i.is_branch())
            .map(|i| i.pc)
            .collect();
        let distinct: std::collections::HashSet<_> = branch_pcs.iter().collect();
        // Many executions per distinct site on average.
        assert!(branch_pcs.len() > distinct.len() * 10);
    }

    #[test]
    fn regular_branches_are_more_predictable_than_irregular() {
        // A last-outcome predictor keyed by PC beats a coin flip on regular
        // (rotation-pattern) branches and not on irregular ones.
        let accuracy = |regularity: f64| {
            let b = BranchBehavior {
                taken_fraction: 0.5,
                regularity,
                pattern_share: 0.5,
                static_branches: 8192,
                bias_spread: 0.0,
            };
            let p = WorkloadProfile::builder("t")
                .branches(0.3)
                .kernel_fraction(0.0)
                .code_model(CodeModel {
                    footprint_bytes: 2048,
                    hot_fraction: 1.0,
                    hot_bytes: 2048,
                })
                .branch_behavior(b)
                .build()
                .unwrap();
            let mut last: std::collections::HashMap<u64, bool> = Default::default();
            let (mut hits, mut total) = (0usize, 0usize);
            for i in TraceGenerator::new(&p, 4).take(200_000) {
                if let Kind::Branch { taken, .. } = i.kind {
                    let pred = *last.get(&i.pc).unwrap_or(&true);
                    hits += (pred == taken) as usize;
                    total += 1;
                    last.insert(i.pc, taken);
                }
            }
            hits as f64 / total as f64
        };
        let reg = accuracy(1.0);
        let irr = accuracy(0.0);
        assert!(reg > irr + 0.15, "regular {reg} vs irregular {irr}");
    }

    #[test]
    fn taken_branch_targets_match_block_starts() {
        let p = profile();
        // Block starts include zero-length blocks whose only instruction is
        // the branch itself, so collect every user-mode fetch PC.
        let block_pcs: std::collections::HashSet<u64> = TraceGenerator::new(&p, 6)
            .take(50_000)
            .filter(|i| !i.kernel)
            .map(|i| i.pc)
            .collect();
        for i in TraceGenerator::new(&p, 6).take(10_000) {
            if let Kind::Branch { target, .. } = i.kind {
                // Targets are hot-block starts, hence observed fetch PCs.
                assert!(block_pcs.contains(&target), "target {target:#x}");
            }
        }
    }
}
