//! Property-based tests for profile validation and trace generation.

use horizon_trace::{Region, TraceGenerator, WorkloadProfile};
use proptest::prelude::*;

/// Strategy for a valid instruction mix (fractions summing below 1).
fn mix() -> impl Strategy<Value = (f64, f64, f64, f64, f64)> {
    (
        0.0..0.4f64,
        0.0..0.2f64,
        0.0..0.3f64,
        0.0..0.05f64,
        0.0..0.05f64,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn valid_mixes_build((l, s, b, f, v) in mix(), seed in any::<u64>()) {
        let p = WorkloadProfile::builder("p")
            .loads(l).stores(s).branches(b).fp(f).simd(v)
            .build()
            .unwrap();
        // Generation never panics and emits the requested count.
        let n = 2_000;
        let trace: Vec<_> = TraceGenerator::new(&p, seed).take(n).collect();
        prop_assert_eq!(trace.len(), n);
    }

    #[test]
    fn realized_mix_within_tolerance((l, s, b, f, v) in mix(), seed in 0u64..32) {
        let p = WorkloadProfile::builder("p")
            .loads(l).stores(s).branches(b).fp(f).simd(v)
            .build()
            .unwrap();
        let n = 60_000;
        let trace: Vec<_> = TraceGenerator::new(&p, seed).take(n).collect();
        let loads = trace.iter().filter(|i| i.is_load()).count() as f64 / n as f64;
        let branches = trace.iter().filter(|i| i.is_branch()).count() as f64 / n as f64;
        prop_assert!((loads - l).abs() < 0.03, "loads {} vs {}", loads, l);
        // Branch share has extra variance from the finite block population
        // and the automaton's visit distribution; the catalog-level
        // integration tests pin it tighter at larger windows.
        prop_assert!((branches - b).abs() < 0.06, "branches {} vs {}", branches, b);
    }

    #[test]
    fn determinism(seed in any::<u64>()) {
        let p = WorkloadProfile::builder("p").build().unwrap();
        let a: Vec<_> = TraceGenerator::new(&p, seed).take(500).collect();
        let b: Vec<_> = TraceGenerator::new(&p, seed).take(500).collect();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn data_addresses_within_total_footprint(
        bytes1 in 64u64..(1 << 22),
        bytes2 in 64u64..(1 << 22),
        seed in 0u64..16,
    ) {
        let p = WorkloadProfile::builder("p")
            .loads(0.5)
            .regions(vec![Region::random(bytes1, 1.0), Region::streaming(bytes2, 0.5, 64)])
            .build()
            .unwrap();
        // All data addresses fall in [DATA_BASE, DATA_BASE + footprint + slack).
        let base = 0x1000_0000_0000u64;
        let limit = base + bytes1 + bytes2 + 16384;
        for inst in TraceGenerator::new(&p, seed).take(5_000) {
            if let Some(a) = inst.data_address() {
                prop_assert!(a >= base && a < limit, "addr {:#x}", a);
            }
        }
    }

    #[test]
    fn blend_of_self_is_identity_on_scalars(l in 0.0..0.4f64) {
        let p = WorkloadProfile::builder("p").loads(l).build().unwrap();
        let blended = WorkloadProfile::blend("b", &[(&p, 1.0), (&p, 3.0)]).unwrap();
        prop_assert!((blended.mix().loads - l).abs() < 1e-12);
        prop_assert!((blended.branches().taken_fraction
            - p.branches().taken_fraction).abs() < 1e-12);
    }
}
