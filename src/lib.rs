//! Horizon — a SPEC CPU2017 benchmark similarity, subsetting, and balance
//! analysis toolkit.
//!
//! This root crate re-exports the workspace crates; see the README for the
//! architecture overview and `examples/` for runnable entry points.

#![forbid(unsafe_code)]

pub use horizon_cluster as cluster;
pub use horizon_core as core;
pub use horizon_engine as engine;
pub use horizon_stats as stats;
pub use horizon_trace as trace;
pub use horizon_uarch as uarch;
pub use horizon_workloads as workloads;
